package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, path string, opts Options) (*WAL, [][]byte) {
	t.Helper()
	w, replayed, seqs := openSeqT(t, path, opts)
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("replay seqs not contiguous: %v", seqs)
		}
	}
	return w, replayed
}

func openSeqT(t *testing.T, path string, opts Options) (*WAL, [][]byte, []uint64) {
	t.Helper()
	var replayed [][]byte
	var seqs []uint64
	w, err := Open(path, opts, func(seq uint64, p []byte) error {
		replayed = append(replayed, append([]byte(nil), p...))
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return w, replayed, seqs
}

func appendT(t *testing.T, w *WAL, payload string) {
	t.Helper()
	if err := w.Append(len(payload), func(dst []byte) { copy(dst, payload) }); err != nil {
		t.Fatalf("Append(%q): %v", payload, err)
	}
}

func TestRoundTripReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, replayed := openT(t, path, Options{})
	if len(replayed) != 0 {
		t.Fatalf("fresh log replayed %d records", len(replayed))
	}
	want := []string{"alpha", "bravo", "charlie"}
	for _, s := range want {
		appendT(t, w, s)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, replayed := openT(t, path, Options{})
	defer w2.Close()
	if len(replayed) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(replayed), len(want))
	}
	for i, s := range want {
		if string(replayed[i]) != s {
			t.Fatalf("record %d = %q, want %q", i, replayed[i], s)
		}
	}
	ri := w2.ReplayInfo()
	if ri.Records != 3 || ri.Truncated {
		t.Fatalf("ReplayInfo = %+v, want 3 records, no truncation", ri)
	}
}

func TestEpochIncrementsAcrossOpens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	var epochs []uint64
	for i := 0; i < 3; i++ {
		w, _ := openT(t, path, Options{})
		epochs = append(epochs, w.Epoch())
		appendT(t, w, "x")
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for i, e := range epochs {
		if want := uint64(i + 1); e != want {
			t.Fatalf("open %d: epoch %d, want %d", i, e, want)
		}
	}
}

func TestCrashDropsBufferedKeepsFlushed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openT(t, path, Options{AutoFlushBytes: -1})
	appendT(t, w, "survives-sync")
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	appendT(t, w, "survives-flush")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	appendT(t, w, "lost-in-buffer")
	if err := w.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, func(dst []byte) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Crash = %v, want ErrClosed", err)
	}

	w2, replayed := openT(t, path, Options{})
	defer w2.Close()
	want := []string{"survives-sync", "survives-flush"}
	if len(replayed) != len(want) {
		t.Fatalf("replayed %d records %q, want %q", len(replayed), replayed, want)
	}
	for i, s := range want {
		if string(replayed[i]) != s {
			t.Fatalf("record %d = %q, want %q", i, replayed[i], s)
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openT(t, path, Options{})
	appendT(t, w, "intact-one")
	appendT(t, w, "intact-two")
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append garbage that looks like the
	// start of a frame but is cut off.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore := fileSize(t, path)

	w2, replayed := openT(t, path, Options{})
	if len(replayed) != 2 {
		t.Fatalf("replayed %d records, want 2", len(replayed))
	}
	if !w2.ReplayInfo().Truncated {
		t.Fatal("ReplayInfo.Truncated = false, want true")
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if after := fileSize(t, path); after >= sizeBefore {
		t.Fatalf("torn tail not truncated: size %d -> %d", sizeBefore, after)
	}

	// And a corrupt (bit-flipped) record is also cut, with everything
	// before it preserved.
	w3, _ := openT(t, path, Options{})
	appendT(t, w3, "to-be-corrupted")
	if err := w3.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w3.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	w4, replayed := openT(t, path, Options{})
	defer w4.Close()
	if len(replayed) != 2 || !w4.ReplayInfo().Truncated {
		t.Fatalf("after bit flip: replayed %d (truncated=%v), want 2 (true)",
			len(replayed), w4.ReplayInfo().Truncated)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func TestRotateChainReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openT(t, path, Options{})
	appendT(t, w, "alpha")
	appendT(t, w, "bravo")
	if _, err := w.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if got := w.LiveBytes(); got != 0 {
		t.Fatalf("LiveBytes after Rotate = %d, want 0", got)
	}
	appendT(t, w, "charlie")
	appendT(t, w, "delta")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A full-chain open replays both segments, oldest first, with
	// contiguous seqs starting at 1.
	w2, replayed, seqs := openSeqT(t, path, Options{})
	want := []string{"alpha", "bravo", "charlie", "delta"}
	if len(replayed) != len(want) {
		t.Fatalf("replayed %d records %q, want %q", len(replayed), replayed, want)
	}
	for i, s := range want {
		if string(replayed[i]) != s || seqs[i] != uint64(i+1) {
			t.Fatalf("record %d = %q seq %d, want %q seq %d", i, replayed[i], seqs[i], s, i+1)
		}
	}
	if w2.ChainBase() != 0 || w2.Seq() != 4 {
		t.Fatalf("ChainBase=%d Seq=%d, want 0, 4", w2.ChainBase(), w2.Seq())
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// With SkipBelow at the rotation point the sealed segment is not
	// even read: only the current segment's records come back.
	w3, replayed, seqs := openSeqT(t, path, Options{SkipBelow: 2})
	defer w3.Close()
	if len(replayed) != 2 || string(replayed[0]) != "charlie" || seqs[0] != 3 {
		t.Fatalf("skip open replayed %q seqs %v, want [charlie delta] from seq 3", replayed, seqs)
	}
	if w3.ChainBase() != 0 {
		t.Fatalf("ChainBase = %d, want 0 (.prev retained for fallback)", w3.ChainBase())
	}
}

func TestRotateDiscardsOldestSegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openT(t, path, Options{})
	appendT(t, w, "first-gen")
	if freed, err := w.Rotate(); err != nil || freed != 0 {
		t.Fatalf("first Rotate: freed=%d err=%v, want 0, nil", freed, err)
	}
	appendT(t, w, "second-gen")
	freed, err := w.Rotate()
	if err != nil {
		t.Fatalf("second Rotate: %v", err)
	}
	if freed == 0 {
		t.Fatal("second Rotate freed 0 bytes, want the first generation's size")
	}
	appendT(t, w, "third-gen")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Only the records still in the two live segments replay; the
	// caller's image is presumed to cover the discarded one.
	w2, replayed, seqs := openSeqT(t, path, Options{SkipBelow: 1})
	defer w2.Close()
	if len(replayed) != 2 || seqs[0] != 2 || w2.ChainBase() != 1 {
		t.Fatalf("replayed %q seqs %v chainBase %d, want 2 records from seq 2, base 1",
			replayed, seqs, w2.ChainBase())
	}
}

func TestInterruptedRotationCompletes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openT(t, path, Options{})
	appendT(t, w, "pre-crash")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash window: the old segment was renamed to .prev but the new
	// current segment never got its header.
	if err := os.Rename(path, path+".prev"); err != nil {
		t.Fatal(err)
	}
	w2, replayed, seqs := openSeqT(t, path, Options{})
	if len(replayed) != 1 || seqs[0] != 1 {
		t.Fatalf("replayed %q seqs %v, want [pre-crash] at seq 1", replayed, seqs)
	}
	appendT(t, w2, "post-recovery")
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, replayed, seqs := openSeqT(t, path, Options{})
	defer w3.Close()
	if len(replayed) != 2 || seqs[1] != 2 {
		t.Fatalf("after recovery: replayed %q seqs %v, want both records", replayed, seqs)
	}
}

// TestOpenRebasesAboveImageCoverage: a crash publishes a checkpoint
// image covering buffered records, then loses them before the WAL
// rotates. Open must not let fresh appends reuse seqs the image
// covers — the caller's replay filter would silently drop them at the
// next boot, losing acknowledged writes.
func TestOpenRebasesAboveImageCoverage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openT(t, path, Options{AutoFlushBytes: -1})
	appendT(t, w, "durable-1")
	appendT(t, w, "durable-2")
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	appendT(t, w, "buffered-lost") // covered by the image, lost in the crash
	if err := w.Crash(); err != nil {
		t.Fatal(err)
	}

	// The image claims coverage through seq 3; the durable tail ends at
	// seq 2. Open must complete the crashed rotation: seal the segment
	// into .prev and base the fresh one at 3.
	w2, replayed, _ := openSeqT(t, path, Options{SkipBelow: 3})
	if len(replayed) != 2 {
		t.Fatalf("replayed %d records %q, want the 2 durable ones", len(replayed), replayed)
	}
	if got := w2.Seq(); got != 3 {
		t.Fatalf("Seq after rebase = %d, want 3 (the image's coverage)", got)
	}
	if _, err := os.Stat(path + ".prev"); err != nil {
		t.Fatalf("sealed segment missing: %v", err)
	}
	appendT(t, w2, "acked-after-image")
	if err := w2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// Next boot, same image: the post-image record must replay with a
	// seq above the image's coverage so the caller's filter keeps it.
	w3, replayed, seqs := openSeqT(t, path, Options{SkipBelow: 3})
	defer w3.Close()
	if len(replayed) != 1 || string(replayed[0]) != "acked-after-image" {
		t.Fatalf("replayed %q, want just the post-image record", replayed)
	}
	if seqs[0] <= 3 {
		t.Fatalf("post-image record replayed at seq %d, want > 3", seqs[0])
	}
}

// TestOpenIgnoresStaleRotateTemp: a crash between creating the .next
// temp segment and the rotation renames leaves the temp behind; Open
// must discard it and recover the chain untouched.
func TestOpenIgnoresStaleRotateTemp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openT(t, path, Options{})
	appendT(t, w, "kept")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".next", []byte("half-built segment"), 0o600); err != nil {
		t.Fatal(err)
	}
	w2, replayed, _ := openSeqT(t, path, Options{})
	defer w2.Close()
	if len(replayed) != 1 || string(replayed[0]) != "kept" {
		t.Fatalf("replayed %q, want [kept]", replayed)
	}
	if _, err := os.Stat(path + ".next"); !os.IsNotExist(err) {
		t.Fatalf("stale .next temp not removed: %v", err)
	}
}

func TestCorruptPrevKeepsValidPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openT(t, path, Options{})
	appendT(t, w, "keep-me")
	appendT(t, w, "corrupt-me")
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendT(t, w, "past-the-gap")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path + ".prev")
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x01
	if err := os.WriteFile(path+".prev", data, 0o600); err != nil {
		t.Fatal(err)
	}
	// Without an image covering the sealed segment, recovery keeps the
	// intact prefix of .prev and must drop the current segment too:
	// applying records past a seq gap would corrupt state.
	w2, replayed, seqs := openSeqT(t, path, Options{})
	if len(replayed) != 1 || string(replayed[0]) != "keep-me" || seqs[0] != 1 {
		t.Fatalf("replayed %q seqs %v, want [keep-me] at seq 1", replayed, seqs)
	}
	if !w2.ReplayInfo().Truncated {
		t.Fatal("ReplayInfo.Truncated = false, want true")
	}
	appendT(t, w2, "new-life")
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, replayed, _ := openSeqT(t, path, Options{})
	defer w3.Close()
	if len(replayed) != 2 || string(replayed[1]) != "new-life" {
		t.Fatalf("after reopen: replayed %q, want [keep-me new-life]", replayed)
	}
}

func TestCorruptHeaderNeverPanics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openT(t, path, Options{})
	appendT(t, w, "one")
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendT(t, w, "two")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the current segment's baseSeq field: the
	// header CRC must reject it, demoting the segment instead of
	// renumbering its records.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[16] ^= 0x04
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	w2, replayed, seqs := openSeqT(t, path, Options{})
	defer w2.Close()
	if len(replayed) != 1 || string(replayed[0]) != "one" || seqs[0] != 1 {
		t.Fatalf("replayed %q seqs %v, want just [one] from .prev", replayed, seqs)
	}
	if !w2.ReplayInfo().Truncated {
		t.Fatal("ReplayInfo.Truncated = false, want true")
	}
}

func TestGroupCommitCounters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openT(t, path, Options{AutoFlushBytes: -1})
	defer w.Close()
	headerFsyncs := w.StatsSnapshot().Fsyncs // Open fsyncs the header

	const n = 8
	for i := 0; i < n; i++ {
		appendT(t, w, fmt.Sprintf("record-%d", i))
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	st := w.StatsSnapshot()
	if st.Appends != n {
		t.Fatalf("Appends = %d, want %d", st.Appends, n)
	}
	if got := st.Fsyncs - headerFsyncs; got != 1 {
		t.Fatalf("Fsyncs for one batched Sync = %d, want 1", got)
	}
	if st.Batch.Count != 1 {
		t.Fatalf("batch histogram count = %d, want 1", st.Batch.Count)
	}
	// A Sync with nothing new must not fsync again.
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if again := w.StatsSnapshot().Fsyncs; again != st.Fsyncs {
		t.Fatalf("no-op Sync added fsyncs: %d -> %d", st.Fsyncs, again)
	}
}

func TestConcurrentAppendSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openT(t, path, Options{})
	const (
		goroutines = 8
		perG       = 50
	)
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				payload := fmt.Sprintf("g%d-%d", g, i)
				if err := w.Append(len(payload), func(dst []byte) { copy(dst, payload) }); err != nil {
					errs[g] = err
					return
				}
				if i%10 == 9 {
					if err := w.Sync(); err != nil {
						errs[g] = err
						return
					}
				}
			}
			errs[g] = w.Sync()
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, replayed := openT(t, path, Options{})
	defer w2.Close()
	if len(replayed) != goroutines*perG {
		t.Fatalf("replayed %d records, want %d", len(replayed), goroutines*perG)
	}
}

// TestAppendNoAlloc hard-fails if the append hot path allocates: the
// satellite-6 requirement. Buffer growth amortizes to zero once the
// buffer has reached steady state, so the pre-warm loop runs first.
func TestAppendNoAlloc(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _ := openT(t, path, Options{AutoFlushBytes: -1})
	defer w.Close()
	payload := make([]byte, 256)
	// Pre-warm: grow the buffer past what the measured loop needs.
	for i := 0; i < 64; i++ {
		if err := w.Append(len(payload), func(dst []byte) { copy(dst, payload) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	fill := func(dst []byte) { copy(dst, payload) }
	allocs := testing.AllocsPerRun(32, func() {
		if err := w.Append(len(payload), fill); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Append allocates %.1f objects per op, want 0", allocs)
	}
}
