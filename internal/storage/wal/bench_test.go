package wal

import (
	"path/filepath"
	"sync"
	"testing"
)

// BenchmarkWALAppend measures the user-space append hot path (no
// fsync): the cost every unstable WRITE pays on the disk store.
func BenchmarkWALAppend(b *testing.B) {
	w, err := Open(filepath.Join(b.TempDir(), "wal.log"), Options{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := make([]byte, 8192)
	fill := func(dst []byte) { copy(dst, payload) }
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(len(payload), fill); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupCommit measures COMMIT latency under concurrency: G
// goroutines each append one record and Sync. Group commit shares
// fsyncs between them; the reported records-per-fsync ratio is the
// batching win.
func BenchmarkGroupCommit(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "g1", 4: "g4", 16: "g16"}[g], func(b *testing.B) {
			w, err := Open(filepath.Join(b.TempDir(), "wal.log"), Options{}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			payload := make([]byte, 512)
			fill := func(dst []byte) { copy(dst, payload) }
			base := w.StatsSnapshot()
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / g
			if per == 0 {
				per = 1
			}
			for i := 0; i < g; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < per; j++ {
						if err := w.Append(len(payload), fill); err != nil {
							b.Error(err)
							return
						}
						if err := w.Sync(); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			st := w.StatsSnapshot()
			if fsyncs := st.Fsyncs - base.Fsyncs; fsyncs > 0 {
				b.ReportMetric(float64(st.Appends-base.Appends)/float64(fsyncs), "records/fsync")
			}
		})
	}
}
