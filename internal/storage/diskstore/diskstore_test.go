package diskstore

import (
	"bytes"
	"testing"

	"repro/internal/storage"
)

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// drainReplay consumes the pending record list the way
// vfs.NewWithStores does, returning the records.
func drainReplay(t *testing.T, s *Store) []storage.Record {
	t.Helper()
	var recs []storage.Record
	if _, err := s.Replay(func(r storage.Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestPersistAcrossCloseOpen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	drainReplay(t, s)
	meta := &storage.MetaRecord{Op: storage.OpCreate, Dir: 1, Name: "f", ID: 2, Cookie: 7, Mode: 0o644}
	if err := s.LogMeta(meta); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(2, 0, []byte("persisted"), false, 11); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	recs := drainReplay(t, s2)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	if m := recs[0].Meta; m == nil || m.Op != storage.OpCreate || m.Name != "f" || m.ID != 2 {
		t.Fatalf("record 0 = %+v, want the OpCreate", recs[0])
	}
	if d := recs[1].Data; d == nil || d.ID != 2 || d.Len != 9 {
		t.Fatalf("record 1 = %+v, want the data record", recs[1])
	}
	p := make([]byte, 9)
	if err := s2.ReadAt(2, 0, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, []byte("persisted")) {
		t.Fatalf("serving copy after reopen = %q", p)
	}
}

func TestCrashRestartDropsBufferedKeepsCommitted(t *testing.T) {
	dir := t.TempDir()
	// Disable auto-flush so uncommitted records stay in user space and
	// the crash actually loses them.
	s, err := Open(dir, Options{AutoFlushBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	drainReplay(t, s)
	if err := s.WriteAt(2, 0, []byte("committed"), false, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(3, 0, []byte("lost"), false, 2); err != nil {
		t.Fatal(err)
	}
	epochBefore := s.Epoch()

	if err := s.CrashRestart(); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() <= epochBefore {
		t.Fatalf("epoch %d after crash, want > %d", s.Epoch(), epochBefore)
	}
	recs := drainReplay(t, s)
	if len(recs) != 1 {
		t.Fatalf("replayed %d records after crash, want 1 (the committed write)", len(recs))
	}
	p := make([]byte, 9)
	if err := s.ReadAt(2, 0, p); err != nil || !bytes.Equal(p, []byte("committed")) {
		t.Fatalf("committed content after crash = %q, %v", p, err)
	}
	if err := s.ReadAt(3, 0, make([]byte, 4)); err == nil {
		t.Fatal("uncommitted buffered write survived the crash")
	}

	// The store still works after the in-place restart.
	if err := s.WriteAt(4, 0, []byte("post-crash"), true, 3); err != nil {
		t.Fatal(err)
	}
	p = make([]byte, 10)
	if err := s.ReadAt(4, 0, p); err != nil || !bytes.Equal(p, []byte("post-crash")) {
		t.Fatalf("post-crash write = %q, %v", p, err)
	}
}

// TestReplayAppliesTruncates: an OpSetAttr with SetSize must resize
// the serving copy during the open scan, since content records before
// it may extend past the truncated size.
func TestReplayAppliesTruncates(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	drainReplay(t, s)
	if err := s.WriteAt(2, 0, []byte("0123456789"), true, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.LogMeta(&storage.MetaRecord{
		Op: storage.OpSetAttr, ID: 2, SetMask: storage.SetSize, Size: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Truncate(2, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	drainReplay(t, s2)
	if err := s2.ReadAt(2, 0, make([]byte, 10)); err == nil {
		t.Fatal("read past replayed truncate succeeded")
	}
	p := make([]byte, 4)
	if err := s2.ReadAt(2, 0, p); err != nil || !bytes.Equal(p, []byte("0123")) {
		t.Fatalf("replayed truncated content = %q, %v", p, err)
	}
}

func TestStorageStats(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	drainReplay(t, s)
	if err := s.WriteAt(2, 0, []byte("x"), false, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	st := s.StorageStats()
	if st.Kind != "disk" {
		t.Fatalf("Kind = %q", st.Kind)
	}
	if st.Epoch == 0 || st.WALAppends != 1 || st.Fsyncs == 0 {
		t.Fatalf("stats = %+v, want epoch>0, 1 append, fsyncs>0", st)
	}
}
