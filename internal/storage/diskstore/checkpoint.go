package diskstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"repro/internal/storage"
)

// Checkpoint image file names inside the store directory. The image
// is written to CkptTmpName, fsynced, and atomically renamed over
// CkptName; the displaced previous image survives one generation as
// CkptPrevName so a torn or corrupt newest image falls back to the
// previous one plus a longer journal replay — never to data loss.
const (
	CkptName     = "checkpoint.ckpt"
	CkptTmpName  = "checkpoint.tmp"
	CkptPrevName = "checkpoint.prev"
)

// Image format:
//
//	header:  "SFSCKPT01" magic | epoch u64 | walSeq u64 |
//	         crc32(header) u32                          (29 bytes)
//	record:  len u32 | crc32(payload) u32 | payload
//
// Record payloads are the storage encoding for node records (kind 3),
// plus two image-only kinds:
//
//	extent:  kind=4 | id u64 | size u64 | count u32 |
//	         count × (bno u64 | slot u64)
//	trailer: kind=5 | nodes u64 | extents u64 | nextID u64 |
//	         nextCookie u64 | nextSlot u64
//
// The trailer must be the final record and its counts must match what
// preceded it; otherwise the image is invalid (torn mid-write) and
// the loader falls back. walSeq is the journal LSN the image covers:
// boot replays only records with seq > walSeq over it.
const (
	ckptMagic      = "SFSCKPT01"
	ckptHeaderSize = 29
	imgKindExtent  = 4
	imgKindTrailer = 5
	imgFrameSize   = 8
	maxImgRecord   = 256 << 20
)

type imgExtent struct {
	id, size    uint64
	bnos, slots []uint64
}

type image struct {
	walSeq     uint64
	nodes      []storage.NodeRecord
	extents    []imgExtent
	nextID     uint64
	nextCookie uint64
	nextSlot   uint64
	bytes      uint64 // file size of the image
}

// loadImage parses and fully validates one image file.
func loadImage(path string) (*image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	bad := func(format string, args ...any) (*image, error) {
		return nil, fmt.Errorf("diskstore: checkpoint image %s: %s", path, fmt.Sprintf(format, args...))
	}
	le := binary.LittleEndian
	if len(data) < ckptHeaderSize || string(data[:9]) != ckptMagic {
		return bad("bad header")
	}
	if crc32.ChecksumIEEE(data[:25]) != le.Uint32(data[25:]) {
		return bad("header crc mismatch")
	}
	img := &image{walSeq: le.Uint64(data[17:]), bytes: uint64(len(data))}
	off := ckptHeaderSize
	sawTrailer := false
	var trNodes, trExtents uint64
	for off < len(data) {
		if sawTrailer {
			return bad("bytes after trailer")
		}
		if off+imgFrameSize > len(data) {
			return bad("torn frame at %d", off)
		}
		n := int(le.Uint32(data[off:]))
		crc := le.Uint32(data[off+4:])
		if n <= 0 || n > maxImgRecord || off+imgFrameSize+n > len(data) {
			return bad("torn record at %d", off)
		}
		p := data[off+imgFrameSize : off+imgFrameSize+n]
		if crc32.ChecksumIEEE(p) != crc {
			return bad("record crc mismatch at %d", off)
		}
		off += imgFrameSize + n
		switch p[0] {
		case imgKindExtent:
			if len(p) < 21 {
				return bad("short extent record")
			}
			e := imgExtent{id: le.Uint64(p[1:]), size: le.Uint64(p[9:])}
			count := int(le.Uint32(p[17:]))
			if count != (len(p)-21)/16 || len(p) != 21+count*16 {
				return bad("extent record length mismatch")
			}
			e.bnos = make([]uint64, count)
			e.slots = make([]uint64, count)
			for i := 0; i < count; i++ {
				e.bnos[i] = le.Uint64(p[21+i*16:])
				e.slots[i] = le.Uint64(p[29+i*16:])
			}
			img.extents = append(img.extents, e)
		case imgKindTrailer:
			if len(p) != 41 {
				return bad("bad trailer length %d", len(p))
			}
			trNodes = le.Uint64(p[1:])
			trExtents = le.Uint64(p[9:])
			img.nextID = le.Uint64(p[17:])
			img.nextCookie = le.Uint64(p[25:])
			img.nextSlot = le.Uint64(p[33:])
			sawTrailer = true
		default:
			rec, _, err := storage.DecodeRecord(p)
			if err != nil || rec.Node == nil {
				return bad("unexpected record kind %d", p[0])
			}
			img.nodes = append(img.nodes, *rec.Node)
		}
	}
	if !sawTrailer {
		return bad("no trailer (torn image)")
	}
	if trNodes != uint64(len(img.nodes)) || trExtents != uint64(len(img.extents)) {
		return bad("trailer counts %d/%d != %d/%d", trNodes, trExtents, len(img.nodes), len(img.extents))
	}
	return img, nil
}

// loadImageChain picks the newest valid image, falling back to the
// previous generation when the newest is torn or corrupt. A corrupt
// image file is deleted so a later checkpoint's rename dance cannot
// demote it over the good one. Returns nil when no valid image exists
// (which is only fatal if the journal has been compacted — the caller
// checks coverage against the WAL chain base).
func loadImageChain(dir string) *image {
	ckpt := filepath.Join(dir, CkptName)
	prev := filepath.Join(dir, CkptPrevName)
	img, err := loadImage(ckpt)
	if err == nil {
		return img
	}
	ckptCorrupt := !os.IsNotExist(err)
	pimg, perr := loadImage(prev)
	if ckptCorrupt {
		os.Remove(ckpt)
	}
	if perr == nil {
		return pimg
	}
	if !os.IsNotExist(perr) {
		os.Remove(prev)
	}
	return nil
}

// Checkpoint implements storage.Checkpointer: it writes a full image
// of the namespace (via snapshot) and the pager's extent index, lands
// it atomically, and compacts the journal by rotating the WAL. The
// caller holds the file system quiescent for the duration; concurrent
// reads are fine. On any error the previous images and the full
// journal are intact — a checkpoint either completes or changes
// nothing durable.
func (s *Store) Checkpoint(nextID, nextCookie uint64, snapshot func(emit func(*storage.NodeRecord) error) error) (storage.CheckpointStats, error) {
	st, err := s.checkpoint(nextID, nextCookie, snapshot)
	if err != nil {
		// Surface stuck checkpointing: a growing failure count with a
		// stale image count means the journal is no longer compacting.
		s.mu.Lock()
		s.ckpt.Failures++
		s.mu.Unlock()
	}
	return st, err
}

func (s *Store) checkpoint(nextID, nextCookie uint64, snapshot func(emit func(*storage.NodeRecord) error) error) (storage.CheckpointStats, error) {
	s.mu.Lock()
	w, pg := s.w, s.pg
	s.mu.Unlock()
	start := time.Now()
	// Make the journal durable through the seq the image will claim to
	// cover: with buffered records still in user space, a crash between
	// the image rename and the rotation would otherwise publish an
	// image covering seqs the surviving WAL never reaches (the WAL open
	// path also rebases past such an image, as a second line of
	// defense against torn durable tails).
	if err := w.Sync(); err != nil {
		return storage.CheckpointStats{}, err
	}
	seq := w.Seq()

	tmpPath := filepath.Join(s.dir, CkptTmpName)
	f, err := os.Create(tmpPath)
	if err != nil {
		return storage.CheckpointStats{}, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	le := binary.LittleEndian
	hdr := make([]byte, ckptHeaderSize)
	copy(hdr, ckptMagic)
	le.PutUint64(hdr[9:], w.Epoch())
	le.PutUint64(hdr[17:], seq)
	le.PutUint32(hdr[25:], crc32.ChecksumIEEE(hdr[:25]))
	if _, err := bw.Write(hdr); err != nil {
		f.Close()
		return storage.CheckpointStats{}, err
	}
	frame := func(payload []byte) error {
		var fr [imgFrameSize]byte
		le.PutUint32(fr[:], uint32(len(payload)))
		le.PutUint32(fr[4:], crc32.ChecksumIEEE(payload))
		if _, err := bw.Write(fr[:]); err != nil {
			return err
		}
		_, err := bw.Write(payload)
		return err
	}

	live := make(map[uint64]struct{})
	var nodes uint64
	var buf []byte
	grow := func(n int) []byte {
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		return buf[:n]
	}
	err = snapshot(func(nr *storage.NodeRecord) error {
		live[nr.ID] = struct{}{}
		b := grow(storage.NodeLen(nr))
		storage.PutNode(b, nr)
		nodes++
		return frame(b)
	})
	if err != nil {
		f.Close()
		return storage.CheckpointStats{}, err
	}

	files, err := pg.checkpointImage(live, func(id, size uint64, bnos, slots []uint64) error {
		b := grow(21 + len(bnos)*16)
		b[0] = imgKindExtent
		le.PutUint64(b[1:], id)
		le.PutUint64(b[9:], size)
		le.PutUint32(b[17:], uint32(len(bnos)))
		for i := range bnos {
			le.PutUint64(b[21+i*16:], bnos[i])
			le.PutUint64(b[29+i*16:], slots[i])
		}
		return frame(b)
	})
	if err != nil {
		f.Close()
		return storage.CheckpointStats{}, err
	}

	var tr [41]byte
	tr[0] = imgKindTrailer
	le.PutUint64(tr[1:], nodes)
	le.PutUint64(tr[9:], files)
	le.PutUint64(tr[17:], nextID)
	le.PutUint64(tr[25:], nextCookie)
	le.PutUint64(tr[33:], pg.nextSlot())
	if err := frame(tr[:]); err != nil {
		f.Close()
		return storage.CheckpointStats{}, err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return storage.CheckpointStats{}, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return storage.CheckpointStats{}, err
	}
	imgBytes := uint64(0)
	if st, err := f.Stat(); err == nil {
		imgBytes = uint64(st.Size())
	}
	if err := f.Close(); err != nil {
		return storage.CheckpointStats{}, err
	}
	if err := s.abort("image"); err != nil {
		return storage.CheckpointStats{}, err
	}

	ckptPath := filepath.Join(s.dir, CkptName)
	prevPath := filepath.Join(s.dir, CkptPrevName)
	if _, err := os.Stat(ckptPath); err == nil {
		if err := os.Rename(ckptPath, prevPath); err != nil {
			return storage.CheckpointStats{}, err
		}
		if err := s.abort("rename-prev"); err != nil {
			return storage.CheckpointStats{}, err
		}
	}
	if err := os.Rename(tmpPath, ckptPath); err != nil {
		return storage.CheckpointStats{}, err
	}
	if err := syncDir(s.dir); err != nil {
		return storage.CheckpointStats{}, err
	}
	if err := s.abort("renamed"); err != nil {
		return storage.CheckpointStats{}, err
	}

	truncated, err := w.Rotate()
	if err != nil {
		return storage.CheckpointStats{}, err
	}
	pg.promoteFreed()

	s.mu.Lock()
	s.ckpt.Count++
	s.ckpt.Bytes = imgBytes
	s.ckpt.DurationMS = float64(time.Since(start).Nanoseconds()) / 1e6
	s.ckpt.WALTruncatedBytes += truncated
	out := s.ckpt
	s.mu.Unlock()
	return out, nil
}

// abort runs the test-only crash hook for one checkpoint stage.
func (s *Store) abort(stage string) error {
	if s.testAbort != nil {
		return s.testAbort(stage)
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
