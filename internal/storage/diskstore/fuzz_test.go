package diskstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

// TestCrashCorruptionFuzz is the crash-safety sweep the issue asks
// for: randomized workloads are cut short by a crash, then ONE of the
// durability artifacts (WAL segments or checkpoint images) is torn or
// bit-flipped. Recovery must never panic, must always come up (single
// -file damage is within the design's fault budget: two image
// generations, journal chain covering the older one), and must serve
// some valid prefix of the acknowledged history — never a state that
// no prefix of the workload produced.
//
// The extent file is deliberately not corrupted: it carries no
// per-block CRCs by design — every delta from the image is re-derived
// from the journal, and image-referenced slots are only trusted
// because the image's own CRCs vouch for the index, not the payload
// bytes' history. Content-plane scrubbing is out of scope here.
func TestCrashCorruptionFuzz(t *testing.T) {
	targets := []string{LogName, LogName + ".prev", CkptName, CkptPrevName, ""}
	for iter := 0; iter < 30; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("iter=%d", iter), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xC0FFEE + int64(iter)))
			dir := t.TempDir()
			s, err := Open(dir, Options{AutoFlushBytes: -1, HotBytes: 64 << 10})
			if err != nil {
				t.Fatal(err)
			}
			drainReplay(t, s)

			// The model: per-op snapshots of every live file's bytes.
			files := map[uint64][]byte{}
			snap := func() map[uint64][]byte {
				c := make(map[uint64][]byte, len(files))
				for id, b := range files {
					c[id] = append([]byte(nil), b...)
				}
				return c
			}
			var hist []map[uint64][]byte
			hist = append(hist, snap())

			nextID := uint64(2)
			ids := func() []uint64 {
				out := make([]uint64, 0, len(files))
				for id := range files {
					out = append(out, id)
				}
				return out
			}
			nOps := 25 + rng.Intn(25)
			for op := 0; op < nOps; op++ {
				switch k := rng.Intn(10); {
				case k < 5 || len(files) == 0: // write (new or existing file)
					id := nextID
					if len(files) > 0 && rng.Intn(3) > 0 {
						id = ids()[rng.Intn(len(files))]
					} else {
						nextID++
					}
					off := uint64(rng.Intn(3 * storage.BlockSize))
					n := 1 + rng.Intn(2*storage.BlockSize)
					data := make([]byte, n)
					for i := range data {
						data[i] = byte(rng.Intn(256))
					}
					stable := rng.Intn(3) == 0
					if err := s.WriteAt(id, off, data, stable, int64(op)); err != nil {
						t.Fatal(err)
					}
					old := files[id]
					if need := off + uint64(n); uint64(len(old)) < need {
						old = append(old, make([]byte, need-uint64(len(old)))...)
					}
					copy(old[off:], data)
					files[id] = old
				case k < 6: // truncate
					id := ids()[rng.Intn(len(files))]
					size := uint64(rng.Intn(3 * storage.BlockSize))
					if err := s.LogMeta(&storage.MetaRecord{Op: storage.OpSetAttr, ID: id, SetMask: storage.SetSize, Size: size}); err != nil {
						t.Fatal(err)
					}
					if err := s.Truncate(id, size); err != nil {
						t.Fatal(err)
					}
					old := files[id]
					if uint64(len(old)) > size {
						old = old[:size]
					} else {
						old = append(old, make([]byte, size-uint64(len(old)))...)
					}
					files[id] = old
				case k < 7: // remove
					id := ids()[rng.Intn(len(files))]
					if err := s.LogMeta(&storage.MetaRecord{Op: storage.OpRemove, Dir: 1, Name: "f", ID: id}); err != nil {
						t.Fatal(err)
					}
					if err := s.Remove(id); err != nil {
						t.Fatal(err)
					}
					delete(files, id)
				case k < 9: // commit (sync point)
					if err := s.Commit(uint64(op)); err != nil {
						t.Fatal(err)
					}
				default: // checkpoint
					var nodes []storage.NodeRecord
					for id, b := range files {
						nodes = append(nodes, regNode(id, uint64(len(b))))
					}
					checkpointT(t, s, nextID, uint64(op+1), nodes...)
				}
				hist = append(hist, snap())
			}

			// Crash: drop user-space state, keep what reached the OS.
			if err := s.w.Crash(); err != nil {
				t.Fatal(err)
			}
			s.pg.close()

			// Corrupt one durability artifact (or none), if it exists.
			if name := targets[rng.Intn(len(targets))]; name != "" {
				path := filepath.Join(dir, name)
				if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
					if rng.Intn(2) == 0 {
						data = data[:rng.Intn(len(data))] // torn tail
					} else {
						for i := 1 + rng.Intn(3); i > 0; i-- {
							data[rng.Intn(len(data))] ^= 1 << rng.Intn(8)
						}
					}
					if err := os.WriteFile(path, data, 0o600); err != nil {
						t.Fatal(err)
					}
				}
			}

			s2, err := Open(dir, Options{AutoFlushBytes: -1, HotBytes: 64 << 10})
			if err != nil {
				t.Fatalf("recovery after single-file corruption failed: %v", err)
			}
			defer s2.Close()
			drainReplay(t, s2)

			// The recovered state must equal SOME per-op snapshot: check
			// from newest to oldest, comparing every live file's bytes.
			// (Files absent from a snapshot aren't checked — removed ids'
			// orphaned content is invisible above the diskstore.)
			matches := func(m map[uint64][]byte) bool {
				for id, want := range m {
					if len(want) == 0 {
						continue
					}
					got := make([]byte, len(want))
					if err := s2.ReadAt(id, 0, got); err != nil {
						return false
					}
					if !bytes.Equal(got, want) {
						return false
					}
				}
				return true
			}
			ok := false
			for i := len(hist) - 1; i >= 0; i-- {
				if matches(hist[i]) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatal("recovered state matches no prefix of the acked history")
			}
		})
	}
}
