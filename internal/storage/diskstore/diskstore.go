// Package diskstore implements storage.MetadataStore and
// storage.BlockStore on disk: every mutation appends a record to a
// group-commit write-ahead log (storage/wal) while an embedded
// memstore holds the serving copy rebuilt from the log at each open.
//
// Durability follows the NFS 3 stability model the vfs exposes:
// unstable WriteAt appends asynchronously (user-space buffer, spilled
// to the OS past a threshold), Commit and stable writes wait for one
// group-committed fsync, and LogMeta — namespace mutations — is
// synchronous like FFS metadata updates. The log is the only
// persistent structure; checkpointing/compaction is future work
// (ROADMAP), so the log grows for the life of the directory and every
// open replays it from the start.
//
// CrashRestart is the kill -9 model: buffered records are torn off,
// the log reopens with a bumped epoch, and the store rebuilds its
// serving copy from what survived. The vfs then calls Replay to
// rebuild the node tree and derives a fresh write verifier from the
// epoch, which is exactly what lets acknowledged COMMITs survive the
// crash while clients retransmit the unstable tail.
package diskstore

import (
	"path/filepath"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/storage/memstore"
	"repro/internal/storage/wal"
)

// LogName is the journal file created inside the store directory.
const LogName = "wal.log"

// Options tunes a disk store.
type Options struct {
	// AutoFlushBytes is passed to the WAL (0 selects the default).
	AutoFlushBytes int
}

// Store is a durable store over a single WAL file. All methods are
// safe for concurrent use under the vfs contract (per-id mutations
// serialized by the caller).
type Store struct {
	dir  string
	opts Options

	// mu guards the swappable state below across CrashRestart. Ops
	// snapshot the pointers under mu and then run lock-free against
	// them; an op that loses the race to a crash writes to the old
	// (closed) WAL and reports an error, or mutates an orphaned
	// serving copy — the same "lost at the crash" outcome a real
	// kill -9 gives, and the verifier change makes clients retransmit.
	mu      sync.Mutex
	w       *wal.WAL
	mem     *memstore.Store
	pending []pendingRec
	scan    time.Duration // recovery scan + serving-copy rebuild time
}

// pendingRec is one decoded journal record awaiting the vfs's Replay
// pass (tree rebuild). Data payloads were already applied to the
// serving copy during open.
type pendingRec struct {
	rec storage.Record
}

// Open opens (or creates) the store rooted at dir, scanning the
// journal and rebuilding the serving copy. The caller must follow
// with a storage.Replayer Replay pass (vfs.NewWithStores does) to
// rebuild the namespace.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{dir: dir, opts: opts}
	if err := s.open(); err != nil {
		return nil, err
	}
	return s, nil
}

// open scans the WAL into a fresh serving copy and pending record
// list. Callers hold s.mu or are the constructor.
func (s *Store) open() error {
	start := time.Now()
	mem := memstore.New()
	var pending []pendingRec
	w, err := wal.Open(filepath.Join(s.dir, LogName), wal.Options{AutoFlushBytes: s.opts.AutoFlushBytes},
		func(payload []byte) error {
			rec, data, err := storage.DecodeRecord(payload)
			if err != nil {
				return err
			}
			// Rebuild the serving copy here, in journal order. The
			// namespace (applied later by the vfs) never reorders
			// against content for one id, because the vfs emits both
			// under the same node lock. Records for since-removed ids
			// leave orphaned content — harmless, ids are never reused
			// and the vfs only reads within live files' sizes.
			if d := rec.Data; d != nil {
				if err := mem.WriteAt(d.ID, d.Off, data, true, d.Time); err != nil {
					return err
				}
			} else if m := rec.Meta; m != nil && m.Op == storage.OpSetAttr && m.SetMask&storage.SetSize != 0 {
				if err := mem.Truncate(m.ID, m.Size); err != nil {
					return err
				}
			}
			pending = append(pending, pendingRec{rec: rec})
			return nil
		})
	if err != nil {
		return err
	}
	s.w, s.mem, s.pending = w, mem, pending
	s.scan = time.Since(start)
	return nil
}

// state snapshots the swappable store state.
func (s *Store) state() (*wal.WAL, *memstore.Store) {
	s.mu.Lock()
	w, mem := s.w, s.mem
	s.mu.Unlock()
	return w, mem
}

// Replay implements storage.Replayer: it streams the records scanned
// at open through apply so the vfs can rebuild its node tree, then
// drops them. Serving-copy content was already rebuilt during open;
// apply must not call back into the store.
func (s *Store) Replay(apply func(storage.Record) error) (storage.ReplayStats, error) {
	s.mu.Lock()
	w, pending := s.w, s.pending
	s.pending = nil
	s.mu.Unlock()
	for _, p := range pending {
		if err := apply(p.rec); err != nil {
			return storage.ReplayStats{}, err
		}
	}
	info := w.ReplayInfo()
	s.mu.Lock()
	elapsed := s.scan
	s.mu.Unlock()
	return storage.ReplayStats{
		Records: info.Records,
		Bytes:   info.Bytes,
		NanoSec: uint64(elapsed.Nanoseconds()),
	}, nil
}

// LogMeta journals one namespace/attribute mutation and waits for it
// to reach stable storage (one group-committed fsync) — metadata
// updates are synchronous, as on the paper's FFS server.
func (s *Store) LogMeta(rec *storage.MetaRecord) error {
	w, _ := s.state()
	if err := w.Append(storage.MetaLen(rec), func(dst []byte) {
		storage.PutMeta(dst, rec)
	}); err != nil {
		return err
	}
	return w.Sync()
}

// ReadAt serves reads from the in-memory copy.
func (s *Store) ReadAt(id, off uint64, p []byte) error {
	_, mem := s.state()
	return mem.ReadAt(id, off, p)
}

// WriteAt applies the write to the serving copy and appends a journal
// record. Unstable writes return once buffered (the WRITE(unstable)
// fast path); stable writes additionally wait for the group commit.
func (s *Store) WriteAt(id, off uint64, data []byte, stable bool, t int64) error {
	return s.WriteAtClocked(id, off, data, stable, t, nil)
}

// WriteAtClocked implements storage.ClockedStore: WriteAt with the
// group-commit wait of a stable write charged to clk's fsync stage.
func (s *Store) WriteAtClocked(id, off uint64, data []byte, stable bool, t int64, clk *stats.StageClock) error {
	w, mem := s.state()
	// The serving copy needs no shadow bookkeeping: recovery rebuilds
	// it from the journal, so "the last stable image" is whatever the
	// surviving log prefix says.
	if err := mem.WriteAt(id, off, data, true, t); err != nil {
		return err
	}
	rec := storage.DataRecord{ID: id, Off: off, Len: uint32(len(data)), Stable: stable, Time: t}
	if err := w.Append(storage.DataLen(len(data)), func(dst []byte) {
		storage.PutData(dst, &rec, data)
	}); err != nil {
		return err
	}
	if stable {
		return w.SyncClocked(clk)
	}
	return nil
}

// Truncate resizes the serving copy only: the durable record is the
// OpSetAttr MetaRecord the vfs journals for the same operation, so
// logging here would double-record it.
func (s *Store) Truncate(id, size uint64) error {
	_, mem := s.state()
	return mem.Truncate(id, size)
}

// Commit waits for every prior write of any file to reach stable
// storage — the group-commit point backing NFS COMMIT.
func (s *Store) Commit(uint64) error {
	w, _ := s.state()
	return w.Sync()
}

// CommitClocked implements storage.ClockedStore: Commit with the
// group-commit wait charged to clk's fsync stage.
func (s *Store) CommitClocked(_ uint64, clk *stats.StageClock) error {
	w, _ := s.state()
	return w.SyncClocked(clk)
}

// Remove drops serving-copy content; durability rides on the vfs's
// OpRemove/OpRename MetaRecord.
func (s *Store) Remove(id uint64) error {
	_, mem := s.state()
	return mem.Remove(id)
}

// Epoch implements storage.Epocher.
func (s *Store) Epoch() uint64 {
	w, _ := s.state()
	return w.Epoch()
}

// CrashRestart implements storage.CrashRestarter: kill -9 the log
// (dropping user-space buffered records, keeping what reached the
// OS), then reopen and rebuild the serving copy. The caller follows
// with Replay to rebuild the namespace.
func (s *Store) CrashRestart() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Crash(); err != nil {
		return err
	}
	return s.open()
}

// Close flushes and syncs the journal and closes the store.
func (s *Store) Close() error {
	w, _ := s.state()
	return w.Close()
}

// StorageStats implements storage.StatsReporter.
func (s *Store) StorageStats() *storage.Stats {
	s.mu.Lock()
	w, scan := s.w, s.scan
	s.mu.Unlock()
	ws := w.StatsSnapshot()
	info := w.ReplayInfo()
	rs := storage.ReplayStats{Records: info.Records, Bytes: info.Bytes, NanoSec: uint64(scan.Nanoseconds())}
	return &storage.Stats{
		Kind:          "disk",
		Epoch:         ws.Epoch,
		WALAppends:    ws.Appends,
		WALBytes:      ws.AppendBytes,
		Flushes:       ws.Flushes,
		Fsyncs:        ws.Fsyncs,
		BatchRecords:  ws.Batch,
		ReplayRecords: info.Records,
		ReplayBytes:   info.Bytes,
		ReplayMBps:    rs.MBps(),
	}
}
