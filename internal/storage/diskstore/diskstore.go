// Package diskstore implements storage.MetadataStore and
// storage.BlockStore on disk: every mutation appends a record to a
// group-commit write-ahead log (storage/wal), a paged serving copy
// (pager.go) keeps hot content blocks in memory under a byte budget
// and cold extents in an on-disk extent file, and periodic checkpoint
// images (checkpoint.go) bound recovery to the journal tail.
//
// Durability follows the NFS 3 stability model the vfs exposes:
// unstable WriteAt appends asynchronously (user-space buffer, spilled
// to the OS past a threshold), Commit and stable writes wait for one
// group-committed fsync, and LogMeta — namespace mutations — is
// synchronous like FFS metadata updates. The journal is the
// durability authority; the extent file is just the cold tier of the
// serving copy, made authoritative only at checkpoint time (flushed,
// fsynced, and indexed by the image before the journal is compacted).
//
// Boot = load the newest valid checkpoint image + replay only journal
// records past its LSN. A torn or corrupt image falls back to the
// previous generation and a longer replay; only corruption of both an
// image and the journal segment covering it loses data, and that
// reports a clean error, never a panic.
//
// CrashRestart is the kill -9 model: buffered records are torn off,
// the log reopens with a bumped epoch, and the store rebuilds its
// serving copy from image + surviving tail. The vfs then calls Replay
// to rebuild the node tree and derives a fresh write verifier from
// the epoch, which is exactly what lets acknowledged COMMITs survive
// the crash while clients retransmit the unstable tail.
package diskstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/storage/wal"
)

// LogName is the journal file created inside the store directory.
const LogName = "wal.log"

// Options tunes a disk store.
type Options struct {
	// AutoFlushBytes is passed to the WAL (0 selects the default).
	AutoFlushBytes int
	// HotBytes is the pager's residency budget for content blocks
	// (0 selects DefaultHotBytes). The dataset may exceed it; cold
	// extents page in from the extent file on demand.
	HotBytes uint64
}

// Store is a durable store over a WAL chain, a checkpoint image pair,
// and an extent file. All methods are safe for concurrent use under
// the vfs contract (per-id mutations serialized by the caller).
type Store struct {
	dir  string
	opts Options

	// mu guards the swappable state below across CrashRestart. Ops
	// snapshot the pointers under mu and then run lock-free against
	// them; an op that loses the race to a crash writes to the old
	// (closed) WAL and reports an error, or mutates an orphaned
	// serving copy — the same "lost at the crash" outcome a real
	// kill -9 gives, and the verifier change makes clients retransmit.
	mu      sync.Mutex
	w       *wal.WAL
	pg      *pager
	pending []pendingRec
	scan    time.Duration // recovery scan + serving-copy rebuild time
	replay  storage.ReplayStats
	imgSeq  uint64 // journal seq covered by the image loaded at open

	nextID     uint64 // id/cookie watermarks from the image trailer
	nextCookie uint64

	ckpt storage.CheckpointStats // running checkpoint counters

	// testAbort, when set, is called at each checkpoint stage
	// ("image", "rename-prev", "renamed") and aborts the checkpoint
	// mid-protocol when it returns an error — the unit-test analogue
	// of kill -9 at that instant.
	testAbort func(stage string) error
}

// pendingRec is one decoded image or journal record awaiting the
// vfs's Replay pass (tree rebuild). Data payloads were already
// applied to the serving copy during open.
type pendingRec struct {
	rec storage.Record
}

// Open opens (or creates) the store rooted at dir, loading the newest
// valid checkpoint image and scanning the journal tail past it. The
// caller must follow with a storage.Replayer Replay pass
// (vfs.NewWithStores does) to rebuild the namespace.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{dir: dir, opts: opts}
	if err := s.open(); err != nil {
		return nil, err
	}
	return s, nil
}

// open loads the image chain and scans the WAL tail into a fresh
// serving copy and pending record list. Callers hold s.mu or are the
// constructor.
func (s *Store) open() error {
	start := time.Now()
	if s.pg != nil {
		s.pg.close()
		s.pg = nil
	}
	os.Remove(filepath.Join(s.dir, CkptTmpName)) // stale mid-checkpoint temp

	img := loadImageChain(s.dir)
	pg, err := newPager(filepath.Join(s.dir, ExtentsName), s.opts.HotBytes)
	if err != nil {
		return err
	}
	var pending []pendingRec
	var imgSeq, imgRecords, imgBytes uint64
	if img != nil {
		imgSeq = img.walSeq
		imgBytes = img.bytes
		imgRecords = uint64(len(img.nodes)) + uint64(len(img.extents))
		pg.setNextSlot(img.nextSlot)
		for i := range img.extents {
			e := &img.extents[i]
			pg.install(e.id, e.size, e.bnos, e.slots)
		}
		pending = make([]pendingRec, len(img.nodes))
		for i := range img.nodes {
			pending[i] = pendingRec{rec: storage.Record{Node: &img.nodes[i]}}
		}
		s.nextID, s.nextCookie = img.nextID, img.nextCookie
		// Seed the running checkpoint counters so a reopened store's
		// stats still report that it boots from an image. Count restarts
		// at 1 per boot (per-process counter, like WAL append counts).
		s.ckpt = storage.CheckpointStats{Count: 1, Bytes: imgBytes}
	} else {
		s.ckpt = storage.CheckpointStats{}
		// No image: whatever the extent file holds belongs to a
		// previous life of this directory. Reset it; the journal
		// rebuilds everything.
		if err := pg.f.Truncate(0); err != nil {
			pg.close()
			return err
		}
		s.nextID, s.nextCookie = 0, 0
	}
	imgNanos := uint64(time.Since(start).Nanoseconds())

	walStart := time.Now()
	var tailRecords uint64
	w, err := wal.Open(filepath.Join(s.dir, LogName),
		wal.Options{AutoFlushBytes: s.opts.AutoFlushBytes, SkipBelow: imgSeq},
		func(seq uint64, payload []byte) error {
			if seq <= imgSeq {
				return nil // covered by the image
			}
			rec, data, err := storage.DecodeRecord(payload)
			if err != nil {
				return err
			}
			// Rebuild the serving copy here, in journal order. The
			// namespace (applied later by the vfs) never reorders
			// against content for one id, because the vfs emits both
			// under the same node lock. Records for since-removed ids
			// leave orphaned content — harmless, ids are never reused,
			// the vfs only reads within live files' sizes, and the
			// next checkpoint garbage-collects them.
			if d := rec.Data; d != nil {
				if err := pg.WriteAt(d.ID, d.Off, data); err != nil {
					return err
				}
			} else if m := rec.Meta; m != nil && m.Op == storage.OpSetAttr && m.SetMask&storage.SetSize != 0 {
				if err := pg.Truncate(m.ID, m.Size); err != nil {
					return err
				}
			}
			tailRecords++
			pending = append(pending, pendingRec{rec: rec})
			return nil
		})
	if err != nil {
		pg.close()
		return err
	}
	// Coverage check: the journal has been compacted up to ChainBase;
	// the image must reach at least that far or there is a hole no
	// replay can fill (double corruption — image and its covering
	// segment). Refuse cleanly rather than serve a gap.
	if base := w.ChainBase(); base > imgSeq {
		w.Close()
		pg.close()
		return fmt.Errorf("diskstore: journal compacted to seq %d but checkpoint image covers only seq %d", base, imgSeq)
	}
	info := w.ReplayInfo()
	rs := storage.ReplayStats{
		CheckpointRecords: imgRecords,
		CheckpointBytes:   imgBytes,
		CheckpointNanos:   imgNanos,
		TailRecords:       tailRecords,
		TailBytes:         info.Bytes,
		TailNanos:         uint64(time.Since(walStart).Nanoseconds()),
	}
	rs.Records = rs.CheckpointRecords + rs.TailRecords
	rs.Bytes = rs.CheckpointBytes + rs.TailBytes
	rs.NanoSec = uint64(time.Since(start).Nanoseconds())
	s.w, s.pg, s.pending = w, pg, pending
	s.replay = rs
	s.imgSeq = imgSeq
	s.scan = time.Since(start)
	return nil
}

// state snapshots the swappable store state.
func (s *Store) state() (*wal.WAL, *pager) {
	s.mu.Lock()
	w, pg := s.w, s.pg
	s.mu.Unlock()
	return w, pg
}

// Replay implements storage.Replayer: it streams the image's node
// records and then the journal-tail records scanned at open through
// apply so the vfs can rebuild its node tree, then drops them.
// Serving-copy content was already rebuilt during open; apply must
// not call back into the store.
func (s *Store) Replay(apply func(storage.Record) error) (storage.ReplayStats, error) {
	s.mu.Lock()
	pending, rs := s.pending, s.replay
	s.pending = nil
	s.mu.Unlock()
	for _, p := range pending {
		if err := apply(p.rec); err != nil {
			return storage.ReplayStats{}, err
		}
	}
	return rs, nil
}

// Watermarks implements storage.Watermarker: the id/cookie allocation
// watermarks persisted in the checkpoint trailer (zero when booting
// without an image).
func (s *Store) Watermarks() (nextID, nextCookie uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextID, s.nextCookie
}

// WALSizeBytes implements storage.Checkpointer's trigger gauge: bytes
// appended to the live journal segment since the last checkpoint.
func (s *Store) WALSizeBytes() uint64 {
	w, _ := s.state()
	return w.LiveBytes()
}

// LogMeta journals one namespace/attribute mutation and waits for it
// to reach stable storage (one group-committed fsync) — metadata
// updates are synchronous, as on the paper's FFS server.
func (s *Store) LogMeta(rec *storage.MetaRecord) error {
	w, _ := s.state()
	if err := w.Append(storage.MetaLen(rec), func(dst []byte) {
		storage.PutMeta(dst, rec)
	}); err != nil {
		return err
	}
	return w.Sync()
}

// ReadAt serves reads from the paged serving copy, faulting cold
// extents in from the extent file as needed.
func (s *Store) ReadAt(id, off uint64, p []byte) error {
	_, pg := s.state()
	return pg.ReadAt(id, off, p)
}

// WriteAt applies the write to the serving copy and appends a journal
// record. Unstable writes return once buffered (the WRITE(unstable)
// fast path); stable writes additionally wait for the group commit.
func (s *Store) WriteAt(id, off uint64, data []byte, stable bool, t int64) error {
	return s.WriteAtClocked(id, off, data, stable, t, nil)
}

// WriteAtClocked implements storage.ClockedStore: WriteAt with the
// group-commit wait of a stable write charged to clk's fsync stage.
func (s *Store) WriteAtClocked(id, off uint64, data []byte, stable bool, t int64, clk *stats.StageClock) error {
	w, pg := s.state()
	// The serving copy needs no shadow bookkeeping: recovery rebuilds
	// it from image + journal, so "the last stable image" is whatever
	// the surviving prefix says.
	if err := pg.WriteAt(id, off, data); err != nil {
		return err
	}
	rec := storage.DataRecord{ID: id, Off: off, Len: uint32(len(data)), Stable: stable, Time: t}
	if err := w.Append(storage.DataLen(len(data)), func(dst []byte) {
		storage.PutData(dst, &rec, data)
	}); err != nil {
		return err
	}
	if stable {
		return w.SyncClocked(clk)
	}
	return nil
}

// Truncate resizes the serving copy only: the durable record is the
// OpSetAttr MetaRecord the vfs journals for the same operation, so
// logging here would double-record it.
func (s *Store) Truncate(id, size uint64) error {
	_, pg := s.state()
	return pg.Truncate(id, size)
}

// Commit waits for every prior write of any file to reach stable
// storage — the group-commit point backing NFS COMMIT.
func (s *Store) Commit(uint64) error {
	w, _ := s.state()
	return w.Sync()
}

// CommitClocked implements storage.ClockedStore: Commit with the
// group-commit wait charged to clk's fsync stage.
func (s *Store) CommitClocked(_ uint64, clk *stats.StageClock) error {
	w, _ := s.state()
	return w.SyncClocked(clk)
}

// Remove drops serving-copy content; durability rides on the vfs's
// OpRemove/OpRename MetaRecord. The extent slots go on the deferred
// free list so retained images stay valid.
func (s *Store) Remove(id uint64) error {
	_, pg := s.state()
	return pg.Remove(id)
}

// Epoch implements storage.Epocher.
func (s *Store) Epoch() uint64 {
	w, _ := s.state()
	return w.Epoch()
}

// CrashRestart implements storage.CrashRestarter: kill -9 the log
// (dropping user-space buffered records, keeping what reached the
// OS), then reopen and rebuild the serving copy from image + tail.
// The caller follows with Replay to rebuild the namespace.
func (s *Store) CrashRestart() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Crash(); err != nil {
		return err
	}
	return s.open()
}

// Close flushes and syncs the journal and closes the store. Resident
// dirty blocks need no writeback: the journal already holds them and
// the next open replays the tail.
func (s *Store) Close() error {
	s.mu.Lock()
	w, pg := s.w, s.pg
	s.mu.Unlock()
	err := w.Close()
	if cerr := pg.close(); err == nil {
		err = cerr
	}
	return err
}

// StorageStats implements storage.StatsReporter.
func (s *Store) StorageStats() *storage.Stats {
	s.mu.Lock()
	w, pg, rs, ck := s.w, s.pg, s.replay, s.ckpt
	s.mu.Unlock()
	ws := w.StatsSnapshot()
	ck.LoadMBps = rs.CheckpointMBps()
	ck.TailMBps = rs.TailMBps()
	return &storage.Stats{
		Kind:          "disk",
		Epoch:         ws.Epoch,
		WALAppends:    ws.Appends,
		WALBytes:      ws.AppendBytes,
		Flushes:       ws.Flushes,
		Fsyncs:        ws.Fsyncs,
		BatchRecords:  ws.Batch,
		ReplayRecords: rs.Records,
		ReplayBytes:   rs.Bytes,
		ReplayMBps:    rs.MBps(),
		Checkpoint:    &ck,
		Pager:         pg.stats(),
	}
}
