package diskstore

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// ExtentsName is the cold-extent file created inside the store
// directory: an array of BlockSize slots that blocks page out to and
// fault back in from, letting the served dataset exceed the hot
// budget.
const ExtentsName = "extents.dat"

// DefaultHotBytes is the residency budget when Options.HotBytes is 0.
const DefaultHotBytes = 64 << 20

// pagerShards fixes the shard count. In-shard eviction keeps at least
// one block per shard, so the residency floor is pagerShards blocks;
// rebalance evicts across shards after each call, so residency settles
// at or under the budget whenever the budget covers that floor.
const pagerShards = 8

// pager is the paged serving copy of file content: a bounded set of
// resident blocks over an extent file. Hot blocks live in memory;
// cold ones are paged in on demand and evicted CLOCK-wise, with dirty
// blocks written back to their slot on the way out. Durability never
// depends on the extent file between checkpoints — every write is
// journaled — so evictions write without fsync; checkpoints fsync the
// extent file before publishing an image that references its slots.
//
// Invariant: a (file, block) pair with no resident block and no slot
// reads as zeros, and the bytes of any block past the file's size are
// zero (truncate zeroes the boundary tail when it shrinks). Slot
// reuse is deferred two checkpoint generations so both retained
// images only ever reference slots whose binding hasn't changed.
type pager struct {
	f        *os.File
	hotBytes uint64
	budget   uint64 // hotBytes in whole blocks
	shards   [pagerShards]pagerShard

	// Slot allocator. freed[0] collects slots released since the last
	// completed checkpoint, freed[1] the generation before; a
	// checkpoint promotes freed[1] to the free list. next is persisted
	// in checkpoint trailers so recovery never re-allocates a slot a
	// retained image references (slots freed in the window before a
	// crash leak until the file is recreated — bounded, and compacted
	// away whenever their ids are rewritten).
	allocMu sync.Mutex
	next    uint64
	free    []uint64
	freed   [2][]uint64

	resident  atomic.Uint64 // resident blocks, all shards
	faults    atomic.Uint64
	evictions atomic.Uint64
	wbFails   atomic.Uint64 // abandoned evictions (write-back errors)
}

type pagerShard struct {
	mu    sync.Mutex
	files map[uint64]*pfile
	ring  []*pblock // CLOCK ring: resident + not-yet-reaped dead
	hand  int
	live  int // resident blocks in this shard
}

type pfile struct {
	size   uint64
	blocks map[uint64]*pblock // resident, by block number
	slots  map[uint64]uint64  // block number -> extent slot
}

type pblock struct {
	id, bno uint64
	data    []byte
	dirty   bool
	ref     bool
	dead    bool
}

func newPager(path string, hotBytes uint64) (*pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, err
	}
	if hotBytes == 0 {
		hotBytes = DefaultHotBytes
	}
	p := &pager{f: f, hotBytes: hotBytes, budget: max(hotBytes/storage.BlockSize, 1)}
	for i := range p.shards {
		p.shards[i].files = make(map[uint64]*pfile)
	}
	return p, nil
}

func (p *pager) shard(id uint64) *pagerShard { return &p.shards[id%pagerShards] }

func (p *pager) close() error { return p.f.Close() }

// install registers one file's extent index from a checkpoint image.
// Boot-time only, before the pager is shared.
func (p *pager) install(id, size uint64, bnos, slots []uint64) {
	sh := p.shard(id)
	pf := &pfile{size: size, blocks: make(map[uint64]*pblock), slots: make(map[uint64]uint64, len(bnos))}
	for i, bno := range bnos {
		pf.slots[bno] = slots[i]
	}
	sh.files[id] = pf
}

// setNextSlot seeds the allocator watermark from a checkpoint trailer.
func (p *pager) setNextSlot(n uint64) { p.next = n }

func (p *pager) allocSlot() uint64 {
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s
	}
	s := p.next
	p.next++
	return s
}

// releaseSlots defers the slots' reuse two checkpoint generations.
func (p *pager) releaseSlots(slots []uint64) {
	if len(slots) == 0 {
		return
	}
	p.allocMu.Lock()
	p.freed[0] = append(p.freed[0], slots...)
	p.allocMu.Unlock()
}

// promoteFreed advances the deferred-free generations after a
// checkpoint completes: slots freed two checkpoints ago are no longer
// referenced by either retained image.
func (p *pager) promoteFreed() {
	p.allocMu.Lock()
	p.free = append(p.free, p.freed[1]...)
	p.freed[1] = p.freed[0]
	p.freed[0] = nil
	p.allocMu.Unlock()
}

// getFile returns the file, creating it when create is set. Caller
// holds sh.mu.
func (sh *pagerShard) getFile(id uint64, create bool) *pfile {
	pf := sh.files[id]
	if pf == nil && create {
		pf = &pfile{blocks: make(map[uint64]*pblock), slots: make(map[uint64]uint64)}
		sh.files[id] = pf
	}
	return pf
}

// fault brings one block into residency: from its slot when it has
// one, as zeros when it does not (a hole). Caller holds sh.mu.
func (p *pager) fault(sh *pagerShard, pf *pfile, id, bno uint64) (*pblock, error) {
	b := &pblock{id: id, bno: bno, data: make([]byte, storage.BlockSize), ref: true}
	if slot, ok := pf.slots[bno]; ok {
		// A short read at the extent file's end just means the tail of
		// the slot was never written — those bytes read as zeros.
		_, err := p.f.ReadAt(b.data, int64(slot)*storage.BlockSize)
		if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
			return nil, err
		}
	}
	p.faults.Add(1)
	pf.blocks[bno] = b
	sh.insert(b)
	p.resident.Add(1)
	sh.live++
	p.evictOver(sh, b)
	return b, nil
}

// insert adds b to the CLOCK ring, compacting reaped entries when the
// ring has grown well past the live population.
func (sh *pagerShard) insert(b *pblock) {
	if len(sh.ring) > 2*sh.live+8 {
		kept := sh.ring[:0]
		for _, e := range sh.ring {
			if !e.dead {
				kept = append(kept, e)
			}
		}
		sh.ring = kept
		sh.hand = 0
	}
	sh.ring = append(sh.ring, b)
}

// evictOver runs CLOCK within sh until the global residency is back
// under budget or this shard is down to one block. Dirty victims
// write back to their slot (allocating one on first eviction); clean
// victims just drop. pin is the block the caller is in the middle of
// installing — its data is copied in only after evictOver returns, so
// evicting it would silently drop the write; CLOCK skips it outright.
// Caller holds sh.mu.
func (p *pager) evictOver(sh *pagerShard, pin *pblock) {
	for p.resident.Load() > p.budget && sh.live > 1 && len(sh.ring) > 0 {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		b := sh.ring[sh.hand]
		if b.dead {
			sh.ring[sh.hand] = sh.ring[len(sh.ring)-1]
			sh.ring = sh.ring[:len(sh.ring)-1]
			continue
		}
		if b == pin {
			sh.hand++
			continue
		}
		if b.ref {
			b.ref = false
			sh.hand++
			continue
		}
		if err := p.writeBack(sh, b); err != nil {
			// Leave the block resident; the next eviction retries.
			// Durability is unaffected (the WAL holds the data), but
			// residency can sit above budget until write-backs succeed,
			// so count the failure where StorageStats can surface it.
			p.wbFails.Add(1)
			b.ref = true
			return
		}
		pf := sh.files[b.id]
		if pf != nil {
			delete(pf.blocks, b.bno)
		}
		b.dead = true
		sh.ring[sh.hand] = sh.ring[len(sh.ring)-1]
		sh.ring = sh.ring[:len(sh.ring)-1]
		sh.live--
		p.resident.Add(^uint64(0))
		p.evictions.Add(1)
	}
}

// writeBack persists a dirty block to its slot. Caller holds sh.mu.
func (p *pager) writeBack(sh *pagerShard, b *pblock) error {
	if !b.dirty {
		return nil
	}
	pf := sh.files[b.id]
	if pf == nil {
		return nil
	}
	slot, ok := pf.slots[b.bno]
	if !ok {
		slot = p.allocSlot()
		pf.slots[b.bno] = slot
	}
	if _, err := p.f.WriteAt(b.data, int64(slot)*storage.BlockSize); err != nil {
		return err
	}
	b.dirty = false
	return nil
}

// rebalance evicts across shards until global residency is back under
// budget. Called with no shard lock held and takes one shard lock at a
// time, so it can never deadlock with in-shard eviction. It exists for
// the insert-into-a-near-empty-shard case: in-shard CLOCK can only
// strip the inserting shard down to one block, so the overflow must
// come out of whichever shards still hold the excess.
func (p *pager) rebalance() {
	for i := 0; i < pagerShards && p.resident.Load() > p.budget; i++ {
		sh := &p.shards[i]
		sh.mu.Lock()
		p.evictOver(sh, nil)
		sh.mu.Unlock()
	}
}

// ReadAt copies [off, off+len(dst)) of id into dst, faulting cold
// blocks in as needed.
func (p *pager) ReadAt(id, off uint64, dst []byte) error {
	err := p.readAt(id, off, dst)
	p.rebalance()
	return err
}

func (p *pager) readAt(id, off uint64, dst []byte) error {
	sh := p.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	pf := sh.getFile(id, false)
	if pf == nil || off+uint64(len(dst)) > pf.size {
		return fmt.Errorf("diskstore: read of id %d [%d,+%d) beyond stored extent", id, off, len(dst))
	}
	for len(dst) > 0 {
		bno := off / storage.BlockSize
		bo := off % storage.BlockSize
		n := min(uint64(len(dst)), storage.BlockSize-bo)
		b := pf.blocks[bno]
		if b == nil {
			var err error
			if b, err = p.fault(sh, pf, id, bno); err != nil {
				return err
			}
		}
		b.ref = true
		copy(dst[:n], b.data[bo:bo+n])
		dst = dst[n:]
		off += n
	}
	return nil
}

// WriteAt stores data at off, extending the file (zero-filled) as
// needed. Whole-block overwrites never fault; partial blocks fault
// their old content in first.
func (p *pager) WriteAt(id, off uint64, data []byte) error {
	err := p.writeAt(id, off, data)
	p.rebalance()
	return err
}

func (p *pager) writeAt(id, off uint64, data []byte) error {
	sh := p.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	pf := sh.getFile(id, true)
	for len(data) > 0 {
		bno := off / storage.BlockSize
		bo := off % storage.BlockSize
		n := min(uint64(len(data)), storage.BlockSize-bo)
		b := pf.blocks[bno]
		if b == nil {
			if bo == 0 && n == storage.BlockSize {
				// Full overwrite: the old content is irrelevant.
				b = &pblock{id: id, bno: bno, data: make([]byte, storage.BlockSize), ref: true}
				pf.blocks[bno] = b
				sh.insert(b)
				p.resident.Add(1)
				sh.live++
				p.evictOver(sh, b)
			} else {
				var err error
				if b, err = p.fault(sh, pf, id, bno); err != nil {
					return err
				}
			}
		}
		copy(b.data[bo:bo+n], data[:n])
		b.dirty = true
		b.ref = true
		data = data[n:]
		off += n
	}
	if off > pf.size {
		pf.size = off
	}
	return nil
}

// Truncate sets the size of id, creating it if absent. Shrinking
// drops whole blocks past the new end and zeroes the boundary tail so
// a later grow reads zeros there.
func (p *pager) Truncate(id, size uint64) error {
	err := p.truncate(id, size)
	p.rebalance()
	return err
}

func (p *pager) truncate(id, size uint64) error {
	sh := p.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	pf := sh.getFile(id, true)
	if size < pf.size {
		keep := (size + storage.BlockSize - 1) / storage.BlockSize
		var freed []uint64
		for bno, b := range pf.blocks {
			if bno >= keep {
				b.dead = true
				delete(pf.blocks, bno)
				sh.live--
				p.resident.Add(^uint64(0))
			}
		}
		for bno, slot := range pf.slots {
			if bno >= keep {
				freed = append(freed, slot)
				delete(pf.slots, bno)
			}
		}
		p.releaseSlots(freed)
		if bo := size % storage.BlockSize; bo != 0 {
			bno := size / storage.BlockSize
			b := pf.blocks[bno]
			if b == nil {
				if _, ok := pf.slots[bno]; ok {
					var err error
					if b, err = p.fault(sh, pf, id, bno); err != nil {
						return err
					}
				}
			}
			if b != nil {
				for i := bo; i < storage.BlockSize; i++ {
					b.data[i] = 0
				}
				b.dirty = true
			}
		}
	}
	pf.size = size
	return nil
}

// Remove drops all content of id.
func (p *pager) Remove(id uint64) error {
	sh := p.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p.removeLocked(sh, id)
	return nil
}

func (p *pager) removeLocked(sh *pagerShard, id uint64) {
	pf := sh.files[id]
	if pf == nil {
		return
	}
	for _, b := range pf.blocks {
		b.dead = true
		sh.live--
		p.resident.Add(^uint64(0))
	}
	var freed []uint64
	for _, slot := range pf.slots {
		freed = append(freed, slot)
	}
	p.releaseSlots(freed)
	delete(sh.files, id)
}

// checkpointImage garbage-collects files not in live, flushes every
// dirty block to its slot, fsyncs the extent file, and then emits one
// extent-index entry per live file. The caller guarantees no writers
// are running (vfs quiesce); concurrent readers may fault blocks in,
// but after the flush pass every block is clean, so their evictions
// never touch a slot and the emitted index stays exact.
func (p *pager) checkpointImage(live map[uint64]struct{}, emit func(id, size uint64, bnos, slots []uint64) error) (files uint64, err error) {
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for id := range sh.files {
			if _, ok := live[id]; !ok {
				p.removeLocked(sh, id)
			}
		}
		for _, pf := range sh.files {
			for _, b := range pf.blocks {
				if err := p.writeBack(sh, b); err != nil {
					sh.mu.Unlock()
					return 0, err
				}
			}
		}
		sh.mu.Unlock()
	}
	if err := p.f.Sync(); err != nil {
		return 0, err
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for id, pf := range sh.files {
			bnos := make([]uint64, 0, len(pf.slots))
			slots := make([]uint64, 0, len(pf.slots))
			for bno, slot := range pf.slots {
				bnos = append(bnos, bno)
				slots = append(slots, slot)
			}
			size := pf.size
			if err := emit(id, size, bnos, slots); err != nil {
				sh.mu.Unlock()
				return 0, err
			}
			files++
		}
		sh.mu.Unlock()
	}
	return files, nil
}

// nextSlot returns the allocator watermark for the checkpoint trailer.
func (p *pager) nextSlot() uint64 {
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	return p.next
}

// stats returns the pager's observability block.
func (p *pager) stats() *storage.PagerStats {
	return &storage.PagerStats{
		HotBytes:          p.hotBytes,
		ResidentBytes:     p.resident.Load() * storage.BlockSize,
		Faults:            p.faults.Load(),
		Evictions:         p.evictions.Load(),
		WriteBackFailures: p.wbFails.Load(),
	}
}
