package diskstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/storage"
)

// regNode builds the minimal node record a diskstore-level test needs:
// the checkpoint only uses IDs for liveness and hands the rest back
// through Replay untouched.
func regNode(id, size uint64) storage.NodeRecord {
	return storage.NodeRecord{ID: id, Type: 1, Mode: 0o644, Nlink: 1, Size: size}
}

func checkpointT(t *testing.T, s *Store, nextID, nextCookie uint64, nodes ...storage.NodeRecord) storage.CheckpointStats {
	t.Helper()
	st, err := s.Checkpoint(nextID, nextCookie, func(emit func(*storage.NodeRecord) error) error {
		for i := range nodes {
			if err := emit(&nodes[i]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	return st
}

func TestCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	drainReplay(t, s)
	if err := s.WriteAt(2, 0, []byte("pre-checkpoint"), true, 1); err != nil {
		t.Fatal(err)
	}
	st := checkpointT(t, s, 10, 20, regNode(2, 14))
	if st.Count != 1 || st.Bytes == 0 {
		t.Fatalf("checkpoint stats = %+v, want count 1 and a non-empty image", st)
	}
	if err := s.WriteAt(3, 0, []byte("tail"), true, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	recs := drainReplay(t, s2)
	// The pre-checkpoint data record must NOT replay — only the image's
	// node record plus the tail write.
	if len(recs) != 2 {
		t.Fatalf("replayed %d records %+v, want node + 1 tail record", len(recs), recs)
	}
	if n := recs[0].Node; n == nil || n.ID != 2 || n.Size != 14 {
		t.Fatalf("record 0 = %+v, want the checkpointed node", recs[0])
	}
	if d := recs[1].Data; d == nil || d.ID != 3 {
		t.Fatalf("record 1 = %+v, want the tail data record", recs[1])
	}
	for id, want := range map[uint64]string{2: "pre-checkpoint", 3: "tail"} {
		p := make([]byte, len(want))
		if err := s2.ReadAt(id, 0, p); err != nil || !bytes.Equal(p, []byte(want)) {
			t.Fatalf("id %d after reopen = %q, %v", id, p, err)
		}
	}
	if nid, nck := s2.Watermarks(); nid != 10 || nck != 20 {
		t.Fatalf("Watermarks = %d, %d, want 10, 20", nid, nck)
	}
	rs := s2.StorageStats()
	if rs.Checkpoint == nil || rs.Checkpoint.Count != 1 {
		t.Fatalf("reopened stats lost checkpoint block: %+v", rs.Checkpoint)
	}
}

func TestCheckpointReplayStatsPhases(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	drainReplay(t, s)
	if err := s.WriteAt(2, 0, bytes.Repeat([]byte("a"), 20000), true, 1); err != nil {
		t.Fatal(err)
	}
	checkpointT(t, s, 3, 1, regNode(2, 20000))
	if err := s.WriteAt(2, 0, []byte("tail-write"), true, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	var rs storage.ReplayStats
	var err error
	if rs, err = s2.Replay(func(storage.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if rs.CheckpointRecords == 0 || rs.CheckpointBytes == 0 {
		t.Fatalf("no checkpoint phase in %+v", rs)
	}
	if rs.TailRecords != 1 {
		t.Fatalf("TailRecords = %d, want 1", rs.TailRecords)
	}
	if rs.Records != rs.CheckpointRecords+rs.TailRecords || rs.Bytes != rs.CheckpointBytes+rs.TailBytes {
		t.Fatalf("combined fields are not sums: %+v", rs)
	}
}

func TestCheckpointFallbackToPrevImage(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	drainReplay(t, s)
	if err := s.WriteAt(2, 0, []byte("first"), true, 1); err != nil {
		t.Fatal(err)
	}
	checkpointT(t, s, 3, 1, regNode(2, 5))
	if err := s.WriteAt(2, 5, []byte("+second"), true, 2); err != nil {
		t.Fatal(err)
	}
	checkpointT(t, s, 3, 1, regNode(2, 12))
	if err := s.WriteAt(2, 12, []byte("+tail"), true, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest image: boot must fall back to the previous
	// image and replay the longer tail, losing nothing.
	ckpt := filepath.Join(dir, CkptName)
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x80
	if err := os.WriteFile(ckpt, data, 0o600); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir)
	p := make([]byte, 17)
	if err := s2.ReadAt(2, 0, p); err != nil || !bytes.Equal(p, []byte("first+second+tail")) {
		t.Fatalf("content after image fallback = %q, %v", p, err)
	}
	drainReplay(t, s2)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatal("corrupt newest image was not deleted on fallback")
	}

	// Corrupting the remaining image too leaves a hole the journal
	// cannot fill: that must be a clean error, never a panic or silent
	// data loss.
	prev := filepath.Join(dir, CkptPrevName)
	data, err = os.ReadFile(prev)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x80
	if err := os.WriteFile(prev, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open with both images corrupt and a compacted journal succeeded")
	}
}

// TestCheckpointAbortedMidProtocol kills the checkpoint at each stage
// of the commit protocol and proves recovery loses nothing: every
// acked write is served after reopen, whichever image generation boot
// lands on.
func TestCheckpointAbortedMidProtocol(t *testing.T) {
	for _, stage := range []string{"image", "rename-prev", "renamed"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			s := openT(t, dir)
			drainReplay(t, s)
			if err := s.WriteAt(2, 0, []byte("gen-one"), true, 1); err != nil {
				t.Fatal(err)
			}
			// A completed first checkpoint so the aborted one exercises
			// the rename-prev path too.
			checkpointT(t, s, 3, 1, regNode(2, 7))
			if err := s.WriteAt(2, 7, []byte("|gen-two"), true, 2); err != nil {
				t.Fatal(err)
			}
			boom := errors.New("crashed at " + stage)
			s.testAbort = func(at string) error {
				if at == stage {
					return boom
				}
				return nil
			}
			_, err := s.Checkpoint(3, 1, func(emit func(*storage.NodeRecord) error) error {
				n := regNode(2, 15)
				return emit(&n)
			})
			if !errors.Is(err, boom) {
				t.Fatalf("aborted checkpoint returned %v, want %v", err, boom)
			}
			// Kill the process image: crash the WAL, drop the store, and
			// reopen the directory as a fresh boot would.
			if err := s.w.Crash(); err != nil {
				t.Fatal(err)
			}
			s.pg.close()

			s2 := openT(t, dir)
			defer s2.Close()
			drainReplay(t, s2)
			p := make([]byte, 15)
			if err := s2.ReadAt(2, 0, p); err != nil || !bytes.Equal(p, []byte("gen-one|gen-two")) {
				t.Fatalf("stage %s: content after crash = %q, %v", stage, p, err)
			}
			// And the store must be able to checkpoint again cleanly.
			checkpointT(t, s2, 3, 1, regNode(2, 15))
		})
	}
}

// TestCheckpointAbortedWithUnstableTail crashes right after the image
// rename — before the WAL rotates — while unstable (buffered) writes
// are in flight, optionally also tearing the journal's durable tail.
// The published image then covers seqs the surviving WAL never
// reaches; recovery must rebase the seq space above the image so
// writes acked AFTER the crash are not silently dropped by the next
// boot's replay filter.
func TestCheckpointAbortedWithUnstableTail(t *testing.T) {
	for _, tearTail := range []bool{false, true} {
		name := "buffered"
		if tearTail {
			name = "torn-durable-tail"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{AutoFlushBytes: -1})
			if err != nil {
				t.Fatal(err)
			}
			drainReplay(t, s)
			if err := s.WriteAt(2, 0, []byte("acked"), true, 1); err != nil {
				t.Fatal(err)
			}
			if err := s.WriteAt(2, 5, []byte("|unstable"), false, 2); err != nil {
				t.Fatal(err)
			}
			boom := errors.New("crashed after image rename")
			s.testAbort = func(at string) error {
				if at == "renamed" {
					return boom
				}
				return nil
			}
			_, err = s.Checkpoint(3, 1, func(emit func(*storage.NodeRecord) error) error {
				n := regNode(2, 14)
				return emit(&n)
			})
			if !errors.Is(err, boom) {
				t.Fatalf("aborted checkpoint returned %v, want %v", err, boom)
			}
			if st := s.StorageStats(); st.Checkpoint.Failures != 1 {
				t.Fatalf("checkpoint failures = %d, want 1", st.Checkpoint.Failures)
			}
			if err := s.w.Crash(); err != nil {
				t.Fatal(err)
			}
			s.pg.close()
			if tearTail {
				// Lose the journal's last durable record too (torn
				// write): the image now covers seqs strictly past the
				// surviving tail.
				f, err := os.OpenFile(filepath.Join(dir, LogName), os.O_RDWR, 0)
				if err != nil {
					t.Fatal(err)
				}
				st, err := f.Stat()
				if err != nil {
					t.Fatal(err)
				}
				if err := f.Truncate(st.Size() - 4); err != nil {
					t.Fatal(err)
				}
				f.Close()
			}

			// Boot one: the image (which captured the unstable content
			// via the flushed extent file) must serve everything.
			s2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			drainReplay(t, s2)
			p := make([]byte, 14)
			if err := s2.ReadAt(2, 0, p); err != nil || !bytes.Equal(p, []byte("acked|unstable")) {
				t.Fatalf("content after crash = %q, %v", p, err)
			}
			// New acked write after the crash: this is the record the
			// seq-reuse bug silently loses.
			if err := s2.WriteAt(3, 0, []byte("post-crash-ack"), true, 3); err != nil {
				t.Fatal(err)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}

			// Boot two: the post-crash acked write must survive.
			s3 := openT(t, dir)
			defer s3.Close()
			drainReplay(t, s3)
			p = make([]byte, 14)
			if err := s3.ReadAt(3, 0, p); err != nil || !bytes.Equal(p, []byte("post-crash-ack")) {
				t.Fatalf("post-crash acked write lost: %q, %v", p, err)
			}
			if err := s3.ReadAt(2, 0, p); err != nil || !bytes.Equal(p, []byte("acked|unstable")) {
				t.Fatalf("pre-crash content lost: %q, %v", p, err)
			}
			// And checkpointing proceeds cleanly from the repaired chain.
			checkpointT(t, s3, 4, 2, regNode(2, 14), regNode(3, 14))
		})
	}
}

// TestCheckpointConcurrentReads: the Checkpointer contract allows
// concurrent ReadAt while a checkpoint runs (only mutations are
// quiesced). Race-detector target.
func TestCheckpointConcurrentReads(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{HotBytes: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	drainReplay(t, s)
	const files = 8
	content := bytes.Repeat([]byte("0123456789abcdef"), 2048) // 32 KB each
	var nodes []storage.NodeRecord
	for id := uint64(2); id < 2+files; id++ {
		if err := s.WriteAt(id, 0, content, false, 1); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, regNode(id, uint64(len(content))))
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := uint64(2 + (g+i)%files)
				off := uint64((i % 8) * 4096)
				if err := s.ReadAt(id, off, buf); err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				if !bytes.Equal(buf, content[off:off+4096]) {
					t.Errorf("reader %d: content mismatch at id %d off %d", g, id, off)
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		checkpointT(t, s, 100, 100, nodes...)
	}
	close(stop)
	wg.Wait()
}

func TestSfsbenchStatsJSONShape(t *testing.T) {
	// Guard the -stats wire names the tentpole adds: checkpoint and
	// pager blocks must marshal under the documented keys.
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	drainReplay(t, s)
	if err := s.WriteAt(2, 0, []byte("x"), true, 1); err != nil {
		t.Fatal(err)
	}
	checkpointT(t, s, 3, 1, regNode(2, 1))
	st := s.StorageStats()
	if st.Checkpoint == nil || st.Pager == nil {
		t.Fatalf("disk stats missing checkpoint/pager blocks: %+v", st)
	}
	if st.Checkpoint.Count != 1 || st.Checkpoint.WALTruncatedBytes == 0 && st.Checkpoint.Bytes == 0 {
		t.Fatalf("checkpoint block = %+v", st.Checkpoint)
	}
	if st.Pager.HotBytes == 0 {
		t.Fatalf("pager block = %+v", st.Pager)
	}
	if fmt.Sprintf("%d", st.Pager.ResidentBytes%storage.BlockSize) != "0" {
		t.Fatalf("resident bytes %d not block-aligned", st.Pager.ResidentBytes)
	}
}
