package diskstore

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/storage"
)

// fileContent builds a deterministic per-file pattern so cross-file
// slot mixups show up as content mismatches.
func fileContent(id uint64, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(id*131 + uint64(i)*7)
	}
	return p
}

// TestPagerLargerThanRAM writes a dataset several times the hot
// budget, checkpoints, and proves the pager serves every byte back
// identically while residency stays under budget — the
// larger-than-RAM acceptance row at unit scale.
func TestPagerLargerThanRAM(t *testing.T) {
	dir := t.TempDir()
	const hot = 256 << 10 // 32 blocks
	s, err := Open(dir, Options{HotBytes: hot})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	drainReplay(t, s)

	const files = 24
	const fileSize = 96 << 10 // 2.25 MB total, 9x the hot budget
	var nodes []storage.NodeRecord
	for id := uint64(2); id < 2+files; id++ {
		if err := s.WriteAt(id, 0, fileContent(id, fileSize), false, 1); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, regNode(id, fileSize))
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	checkpointT(t, s, 100, 100, nodes...)

	verify := func(st *Store, label string) {
		t.Helper()
		buf := make([]byte, fileSize)
		for id := uint64(2); id < 2+files; id++ {
			if err := st.ReadAt(id, 0, buf); err != nil {
				t.Fatalf("%s: ReadAt(%d): %v", label, id, err)
			}
			if !bytes.Equal(buf, fileContent(id, fileSize)) {
				t.Fatalf("%s: content mismatch for id %d", label, id)
			}
		}
		ps := st.StorageStats().Pager
		if ps.ResidentBytes > hot {
			t.Fatalf("%s: resident %d bytes exceeds hot budget %d", label, ps.ResidentBytes, hot)
		}
		if ps.Faults == 0 || ps.Evictions == 0 {
			t.Fatalf("%s: dataset 9x budget but faults=%d evictions=%d", label, ps.Faults, ps.Evictions)
		}
	}
	verify(s, "live")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: content now comes exclusively from image + extent file.
	s2, err := Open(dir, Options{HotBytes: hot})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	drainReplay(t, s2)
	verify(s2, "reopened")
}

func TestPagerTruncateZeroesTail(t *testing.T) {
	dir := t.TempDir()
	// Tiny budget so the boundary block cycles through its extent slot.
	s, err := Open(dir, Options{HotBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	drainReplay(t, s)

	full := bytes.Repeat([]byte{0xab}, 3*storage.BlockSize)
	if err := s.WriteAt(2, 0, full, true, 1); err != nil {
		t.Fatal(err)
	}
	// Shrink to mid-block, then grow again: everything past the shrink
	// point must read as zeros, even after eviction pressure.
	cut := uint64(storage.BlockSize + 100)
	if err := s.LogMeta(&storage.MetaRecord{Op: storage.OpSetAttr, ID: 2, SetMask: storage.SetSize, Size: cut}); err != nil {
		t.Fatal(err)
	}
	if err := s.Truncate(2, cut); err != nil {
		t.Fatal(err)
	}
	grow := uint64(3 * storage.BlockSize)
	if err := s.LogMeta(&storage.MetaRecord{Op: storage.OpSetAttr, ID: 2, SetMask: storage.SetSize, Size: grow}); err != nil {
		t.Fatal(err)
	}
	if err := s.Truncate(2, grow); err != nil {
		t.Fatal(err)
	}
	// Evict everything by streaming another file through the budget.
	if err := s.WriteAt(3, 0, fileContent(3, 128<<10), false, 2); err != nil {
		t.Fatal(err)
	}

	check := func(st *Store, label string) {
		t.Helper()
		got := make([]byte, grow)
		if err := st.ReadAt(2, 0, got); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		want := make([]byte, grow)
		copy(want, full[:cut])
		if !bytes.Equal(got, want) {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: first mismatch at %d: got %#x want %#x", label, i, got[i], want[i])
				}
			}
		}
	}
	check(s, "live")

	// And across a checkpointed reopen.
	checkpointT(t, s, 4, 1, regNode(2, grow), regNode(3, 128<<10))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{HotBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	drainReplay(t, s2)
	check(s2, "reopened")
}

// TestPagerSlotReuseDeferred: slots freed by Remove must not be
// handed out again until two checkpoints later, so both retained
// images keep referencing valid bindings. Exercised end to end: drop
// a file, checkpoint, corrupt the newest image, and prove the
// fallback image still reads the original content of a slot that a
// naive allocator would have reused.
func TestPagerSlotReuseDeferred(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{HotBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	drainReplay(t, s)
	doomed := fileContent(2, 64<<10)
	keeper := fileContent(3, 64<<10)
	if err := s.WriteAt(2, 0, doomed, true, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(3, 0, keeper, true, 1); err != nil {
		t.Fatal(err)
	}
	// Image 1 references both files' slots.
	checkpointT(t, s, 4, 1, regNode(2, 64<<10), regNode(3, 64<<10))
	// Drop file 2 (slots -> deferred free) and checkpoint again: image
	// 2 has only file 3, but image 1 still references file 2's slots.
	if err := s.LogMeta(&storage.MetaRecord{Op: storage.OpRemove, Dir: 1, Name: "f2", ID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(2); err != nil {
		t.Fatal(err)
	}
	checkpointT(t, s, 4, 1, regNode(3, 64<<10))
	// New writes must not land in file 2's old slots yet.
	if err := s.WriteAt(4, 0, fileContent(4, 64<<10), true, 2); err != nil {
		t.Fatal(err)
	}
	free := func() int {
		s.pg.allocMu.Lock()
		defer s.pg.allocMu.Unlock()
		return len(s.pg.free)
	}
	if free() != 0 {
		t.Fatalf("%d slots reusable one checkpoint after the free, want 0", free())
	}
	// Third checkpoint promotes the freed generation.
	checkpointT(t, s, 5, 1, regNode(3, 64<<10), regNode(4, 64<<10))
	if free() == 0 {
		t.Fatal("slots still deferred two checkpoints after the free")
	}
}

func TestPagerReadBeyondExtentErrors(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	drainReplay(t, s)
	if err := s.ReadAt(9, 0, make([]byte, 1)); err == nil {
		t.Fatal("read of unknown id succeeded")
	}
	if err := s.WriteAt(2, 0, []byte("abc"), false, 1); err != nil {
		t.Fatal(err)
	}
	err := s.ReadAt(2, 2, make([]byte, 2))
	if err == nil {
		t.Fatal("read past size succeeded")
	}
	want := fmt.Sprintf("diskstore: read of id %d [%d,+%d) beyond stored extent", 2, 2, 2)
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err, want)
	}
}
