package storage

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestMetaRecordRoundTrip(t *testing.T) {
	recs := []MetaRecord{
		{Op: OpCreate, Time: 42, Dir: 1, Name: "file.txt", ID: 7, Cookie: 99,
			Mode: 0o644, UID: 1000, GID: 100},
		{Op: OpMkdir, Time: -5, Dir: 1, Name: "d", ID: 8, Cookie: 100, Mode: 0o755},
		{Op: OpSymlink, Dir: 8, Name: "ln", ID: 9, Cookie: 101, Target: "../elsewhere"},
		{Op: OpLink, Dir: 8, Name: "hard", ID: 7, Cookie: 102},
		{Op: OpRemove, Dir: 1, Name: "file.txt", ID: 7},
		{Op: OpRmdir, Dir: 1, Name: "d", ID: 8},
		{Op: OpRename, Dir: 1, Name: "old", ToDir: 8, ToName: "new", ID: 7, ToCookie: 103},
		{Op: OpSetAttr, ID: 7, SetMask: SetSize | SetMtime, Size: 4096, Mtime: 1234567890},
		{Op: OpSetAttr, ID: 7, SetMask: SetMode | SetUID | SetGID | SetAtime,
			Mode: 0o600, UID: 2, GID: 3, Atime: -1},
		{Op: OpCreate, Dir: 1, Name: "", ID: 10}, // empty strings
	}
	for i, r := range recs {
		buf := make([]byte, MetaLen(&r))
		PutMeta(buf, &r)
		got, payload, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("record %d: DecodeRecord: %v", i, err)
		}
		if payload != nil {
			t.Fatalf("record %d: meta decode returned payload", i)
		}
		if got.Meta == nil || got.Data != nil {
			t.Fatalf("record %d: decoded wrong kind: %+v", i, got)
		}
		if !reflect.DeepEqual(*got.Meta, r) {
			t.Fatalf("record %d round trip:\n got %+v\nwant %+v", i, *got.Meta, r)
		}
	}
}

func TestDataRecordRoundTrip(t *testing.T) {
	payload := []byte("some file content, not aligned to anything")
	r := DataRecord{ID: 7, Off: 8192, Len: uint32(len(payload)), Stable: true, Time: 77}
	buf := make([]byte, DataLen(len(payload)))
	PutData(buf, &r, payload)
	got, gotPayload, err := DecodeRecord(buf)
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if got.Data == nil || got.Meta != nil {
		t.Fatalf("decoded wrong kind: %+v", got)
	}
	if !reflect.DeepEqual(*got.Data, r) {
		t.Fatalf("round trip: got %+v, want %+v", *got.Data, r)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatalf("payload round trip: got %q, want %q", gotPayload, payload)
	}

	// Zero-length data records are legal (zero-fill writes).
	r2 := DataRecord{ID: 3, Off: 0, Len: 0, Stable: false, Time: 1}
	buf2 := make([]byte, DataLen(0))
	PutData(buf2, &r2, nil)
	got2, p2, err := DecodeRecord(buf2)
	if err != nil || got2.Data == nil || len(p2) != 0 {
		t.Fatalf("zero-length record: rec=%+v payload=%v err=%v", got2, p2, err)
	}
}

func TestNodeRecordRoundTrip(t *testing.T) {
	recs := []NodeRecord{
		{ID: 1, Type: 2, Mode: 0o755, Nlink: 3, Parent: 1,
			Atime: 10, Mtime: 11, Ctime: 12,
			Ents: []DirEntRecord{
				{Name: "a", ID: 2, Cookie: 1},
				{Name: "subdir", ID: 3, Cookie: 2},
			}},
		{ID: 2, Type: 1, Mode: 0o640, UID: 1000, GID: 100, Nlink: 2,
			Size: 123456789, Atime: -1, Mtime: 1234567890, Ctime: 1234567891},
		{ID: 9, Type: 3, Mode: 0o777, Nlink: 1, Size: 12, Target: "../elsewhere"},
		{ID: 3, Type: 2, Mode: 0o700, Nlink: 2, Parent: 1}, // empty dir, nil Ents
	}
	for i, r := range recs {
		buf := make([]byte, NodeLen(&r))
		PutNode(buf, &r)
		got, payload, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("record %d: DecodeRecord: %v", i, err)
		}
		if payload != nil || got.Node == nil || got.Meta != nil || got.Data != nil {
			t.Fatalf("record %d: decoded wrong kind: %+v", i, got)
		}
		if !reflect.DeepEqual(*got.Node, r) {
			t.Fatalf("record %d round trip:\n got %+v\nwant %+v", i, *got.Node, r)
		}
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	good := make([]byte, DataLen(4))
	PutData(good, &DataRecord{ID: 1, Len: 4}, []byte("abcd"))
	cases := map[string][]byte{
		"empty":          {},
		"unknown kind":   {9, 0, 0},
		"short data":     good[:2],
		"truncated data": good[:len(good)-1],
		"oversized len":  append(append([]byte(nil), good...), 0xff),
		"bad op":         func() []byte { b := make([]byte, MetaLen(&MetaRecord{})); PutMeta(b, &MetaRecord{Op: 0}); return b }(),
	}
	for name, p := range cases {
		if _, _, err := DecodeRecord(p); !errors.Is(err, ErrBadRecord) {
			t.Errorf("%s: DecodeRecord = %v, want ErrBadRecord", name, err)
		}
	}
}
