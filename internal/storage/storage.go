// Package storage defines the durable-storage seam underneath
// internal/vfs: a MetadataStore that journals namespace and attribute
// mutations, and a BlockStore that holds regular-file content keyed by
// file id. The node tree in vfs owns locking, permission checks, and
// the namespace; a store owns bytes and their durability.
//
// Two implementations live below this package: storage/memstore (the
// default, preserving the original in-memory behavior byte for byte)
// and storage/diskstore (both interfaces over a group-commit
// write-ahead log in storage/wal, with real crash recovery).
//
// # Concurrency contract
//
// The vfs serializes mutating calls per file id under its per-node
// locks: a store never sees two concurrent WriteAt/Truncate/Commit/
// Remove calls for the same id. Concurrent ReadAt calls on one id, and
// any mix of calls across different ids, are allowed and must not
// interfere. LogMeta may be called concurrently from independent
// namespace operations; a durable store must persist records in the
// order the calls complete (vfs emits each record while still holding
// the locks that serialized the operation, so journal order matches
// serialization order).
package storage

import "repro/internal/stats"

// BlockSize is the nominal content block size. The WAL journals
// byte-granular extents, but stores may use this for allocation and
// the protocol layers above advertise it as the preferred I/O size.
const BlockSize = 8192

// MetadataStore journals namespace and attribute mutations. A durable
// implementation returns from LogMeta only once the record is on
// stable storage (one group-committed fsync); the in-memory store is
// a no-op since its "stable storage" is the node tree itself.
type MetadataStore interface {
	LogMeta(rec *MetaRecord) error
	Close() error
}

// BlockStore holds regular-file content. The id space is vfs.FileID;
// offsets and sizes are bytes.
type BlockStore interface {
	// ReadAt copies the content of id at off into p. The caller
	// guarantees [off, off+len(p)) lies within the file's current
	// size, so a short or missing extent indicates store corruption.
	ReadAt(id, off uint64, p []byte) error
	// WriteAt stores data at off, zero-filling any gap beyond the
	// current end. stable asks for durability before return (the NFS
	// FILE_SYNC path); unstable writes may buffer until Commit. t is
	// the caller's clock reading (UnixNano), stamped into the journal
	// so replay is deterministic under an injected clock.
	WriteAt(id, off uint64, data []byte, stable bool, t int64) error
	// Truncate sets the size of id, zero-filling growth. Truncation
	// is a stable update (its durability rides on the MetaRecord the
	// vfs journals for the same operation).
	Truncate(id, size uint64) error
	// Commit makes every prior WriteAt of id durable (the NFS COMMIT
	// operation). For a group-commit store many concurrent Commits
	// share one fsync.
	Commit(id uint64) error
	// Remove drops all content of id after its last link is gone.
	Remove(id uint64) error
}

// Replayer is implemented by durable stores. Replay streams the
// journal of the previous boots in append order, calling apply for
// every record so the vfs can rebuild its node tree. The store applies
// data payloads to its own serving copy before Replay returns; apply
// must not call back into the store. Replay is single-threaded and
// runs before the file system is published.
type Replayer interface {
	Replay(apply func(Record) error) (ReplayStats, error)
}

// ReplayStats summarizes one boot-time recovery. With checkpointing
// the recovery has two distinct phases — loading the checkpoint image
// and replaying the journal tail past its LSN — reported separately so
// boot-time dashboards can tell a big image from a long tail. The
// combined fields are the sums (and all a store without checkpoints
// fills in).
type ReplayStats struct {
	Records uint64 `json:"records"`
	Bytes   uint64 `json:"bytes"` // journal + image bytes scanned
	NanoSec uint64 `json:"nanos"` // wall time of scan + rebuild

	// Checkpoint-load phase: node/extent records decoded from the
	// checkpoint image. Zero when no image was found.
	CheckpointRecords uint64 `json:"checkpoint_records,omitempty"`
	CheckpointBytes   uint64 `json:"checkpoint_bytes,omitempty"`
	CheckpointNanos   uint64 `json:"checkpoint_nanos,omitempty"`
	// Tail-replay phase: journal records past the image's LSN.
	TailRecords uint64 `json:"tail_records,omitempty"`
	TailBytes   uint64 `json:"tail_bytes,omitempty"`
	TailNanos   uint64 `json:"tail_nanos,omitempty"`
}

// MBps returns the replay throughput in MB/s (0 if the replay was too
// fast to time).
func (r ReplayStats) MBps() float64 { return mbps(r.Bytes, r.NanoSec) }

// CheckpointMBps returns the checkpoint-image load throughput.
func (r ReplayStats) CheckpointMBps() float64 { return mbps(r.CheckpointBytes, r.CheckpointNanos) }

// TailMBps returns the journal tail-replay throughput.
func (r ReplayStats) TailMBps() float64 { return mbps(r.TailBytes, r.TailNanos) }

func mbps(bytes, nanos uint64) float64 {
	if nanos == 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / (float64(nanos) / 1e9)
}

// Epocher exposes the per-boot epoch a durable store persists in its
// journal header. The vfs derives the NFS write verifier from it, so
// acknowledged COMMITs survive a real kill -9: a reopened store has a
// new epoch, hence a new verifier, and clients retransmit exactly the
// unstable data that may have been lost.
type Epocher interface {
	Epoch() uint64
}

// Restarter is the crash-simulation hook of the in-memory store.
// Revert restores id's last stable image (discarding unstable writes)
// and reports the reverted size; ok is false when the file had no
// unstable data outstanding. The vfs calls it per node, under that
// node's lock, from the test-only FS.Restart path.
type Restarter interface {
	Revert(id uint64) (size uint64, ok bool)
}

// CrashRestarter is implemented by durable stores that can crash for
// real: CrashRestart drops all user-space buffered journal records and
// closes the journal without a final flush or sync — the kill -9
// failure model — then reopens it, scans surviving records, and
// prepares a fresh Replay for the vfs to rebuild from.
type CrashRestarter interface {
	CrashRestart() error
}

// ClockedStore is implemented by durable stores that can attribute
// their group-commit fsync wait to a request's stage clock. The
// clocked variants behave exactly like WriteAt/Commit, additionally
// charging the time this call spent waiting on the WAL sync to the
// clock's fsync stage (stats.StageFsync). Callers pass a nil clock
// when tracing is off; implementations must then behave identically
// to the unclocked methods.
type ClockedStore interface {
	WriteAtClocked(id, off uint64, data []byte, stable bool, t int64, clk *stats.StageClock) error
	CommitClocked(id uint64, clk *stats.StageClock) error
}

// Checkpointer is implemented by durable stores that can bound replay
// with checkpoint images. Checkpoint writes a point-in-time image of
// the namespace (the node records the snapshot callback emits) plus
// the store's own content index, then compacts the journal up to the
// image's LSN.
//
// The caller owns quiescence: no LogMeta/WriteAt/Truncate/Commit/
// Remove call may be in flight for the duration (the vfs holds its
// quiesce lock across the call). Concurrent ReadAt is allowed.
// snapshot must call emit once per live node; emit returns an error
// only on image-write failure, which aborts the checkpoint leaving
// the previous images and the full journal intact. nextID and
// nextCookie are the caller's allocation watermarks, persisted in the
// image so recovery never reuses an id (see Watermarker). The
// returned stats are the store's updated running view.
type Checkpointer interface {
	Checkpoint(nextID, nextCookie uint64, snapshot func(emit func(*NodeRecord) error) error) (CheckpointStats, error)
	// WALSizeBytes reports the bytes appended to the live journal
	// segment since the last checkpoint (or boot) — the
	// bytes-since-checkpoint trigger for background checkpointing.
	WALSizeBytes() uint64
}

// Watermarker is implemented by stores whose checkpoint images persist
// the id/cookie allocation watermarks. Replaying only node records
// would under-estimate them (ids created and removed before the
// checkpoint vanish from the image, and ids are never reused), so the
// vfs folds these into its counters after Replay.
type Watermarker interface {
	Watermarks() (nextID, nextCookie uint64)
}

// StatsReporter exposes a store's observability counters.
type StatsReporter interface {
	StorageStats() *Stats
}

// Stats is the JSON form of a durable store's counters, embedded in
// the sfssd -stats document and in BENCH JSON counter blocks.
type Stats struct {
	Kind          string             `json:"kind"`
	Epoch         uint64             `json:"epoch"`
	WALAppends    uint64             `json:"wal_appends"`
	WALBytes      uint64             `json:"wal_bytes"`
	Flushes       uint64             `json:"flushes"`
	Fsyncs        uint64             `json:"fsyncs"`
	BatchRecords  stats.HistSnapshot `json:"batch_records"` // records retired per fsync
	ReplayRecords uint64             `json:"replay_records"`
	ReplayBytes   uint64             `json:"replay_bytes"`
	ReplayMBps    float64            `json:"replay_mbps,omitempty"`
	// Checkpoint and Pager appear only on stores that checkpoint and
	// page (diskstore); omitted elsewhere so memstore deployments keep
	// their exact pre-checkpoint stats documents.
	Checkpoint *CheckpointStats `json:"checkpoint,omitempty"`
	Pager      *PagerStats      `json:"pager,omitempty"`
}

// CheckpointStats describes a store's checkpointing activity. As the
// return value of Checkpointer.Checkpoint it describes that one
// checkpoint; inside Stats it is the running view (Count cumulative,
// Bytes/DurationMS from the most recent image, WALTruncatedBytes
// cumulative journal bytes compacted away).
type CheckpointStats struct {
	Count             uint64  `json:"count"`
	Bytes             uint64  `json:"bytes"`
	DurationMS        float64 `json:"duration_ms"`
	WALTruncatedBytes uint64  `json:"wal_truncated_bytes"`
	// Failures counts Checkpoint calls that returned an error (each
	// leaves the previous images and the full journal intact). A
	// growing value against a stale Count means checkpointing is stuck
	// and the journal is growing without bound.
	Failures uint64 `json:"failures,omitempty"`
	// Boot-time gauges: throughput of the checkpoint-image load and
	// the journal tail replay of the most recent open (satellite of
	// the recovery figure; also logged by sfssd at boot).
	LoadMBps float64 `json:"load_mbps,omitempty"`
	TailMBps float64 `json:"tail_mbps,omitempty"`
}

// PagerStats describes the cold-extent pager: how much of the content
// working set is resident in memory versus paged from the extent file.
type PagerStats struct {
	HotBytes      uint64 `json:"hot_bytes"`      // residency budget
	ResidentBytes uint64 `json:"resident_bytes"` // hot blocks in memory now
	Faults        uint64 `json:"faults"`         // read-through misses
	Evictions     uint64 `json:"evictions"`      // blocks evicted by CLOCK
	// WriteBackFailures counts evictions abandoned because the dirty
	// victim could not be written to the extent file. Durability is
	// unaffected (the journal holds the data), but a growing value
	// means residency may sit above HotBytes until write-backs succeed.
	WriteBackFailures uint64 `json:"write_back_failures,omitempty"`
}

// MetaOp enumerates journaled namespace/attribute mutations.
type MetaOp uint8

// Journal operation codes. Values are part of the on-disk format;
// append only.
const (
	OpCreate MetaOp = iota + 1
	OpMkdir
	OpSymlink
	OpLink
	OpRemove
	OpRmdir
	OpRename
	OpSetAttr
)

// SetAttr presence bits for MetaRecord.SetMask.
const (
	SetMode uint8 = 1 << iota
	SetUID
	SetGID
	SetSize
	SetMtime
	SetAtime
)

// MetaRecord is one journaled namespace/attribute mutation. It is a
// fixed superset of every MetaOp's fields; unused fields are zero.
// Time is the vfs clock reading (UnixNano) at the operation, used by
// replay for every timestamp the operation set.
type MetaRecord struct {
	Op   MetaOp
	Time int64

	Dir    uint64 // containing (or source) directory id
	Name   string // entry (or source) name
	ID     uint64 // created / linked node id
	Cookie uint64 // directory cookie of the new entry
	Mode   uint32
	UID    uint32
	GID    uint32
	Target string // OpSymlink

	ToDir    uint64 // OpRename destination directory
	ToName   string // OpRename destination name
	ToCookie uint64 // OpRename destination cookie

	SetMask uint8 // OpSetAttr: which fields below apply
	Size    uint64
	Mtime   int64
	Atime   int64
}

// DataRecord is one journaled content extent. The payload travels
// alongside the record in the journal but is applied by the store
// itself during replay, so Record exposes only the header.
type DataRecord struct {
	ID     uint64
	Off    uint64
	Len    uint32
	Stable bool
	Time   int64
}

// DirEntRecord is one directory entry inside a NodeRecord.
type DirEntRecord struct {
	Name   string
	ID     uint64
	Cookie uint64
}

// NodeRecord is one whole node as captured by a checkpoint snapshot:
// the exact attributes, link count, directory entries (with their
// cookies), and symlink target — everything replay needs to restore
// the node bit-for-bit without re-running the MetaOp history that
// built it. Node records never appear in the WAL; they live only in
// checkpoint images, emitted by the vfs snapshot walk and streamed
// back through Replay before any journal tail records.
type NodeRecord struct {
	ID    uint64
	Type  uint8 // vfs.FileType numeric value (1 reg, 2 dir, 3 symlink)
	Mode  uint32
	UID   uint32
	GID   uint32
	Nlink uint32
	Size  uint64
	Atime int64 // UnixNano, as journaled
	Mtime int64
	Ctime int64

	Parent uint64         // TypeDir: id of ".."
	Target string         // TypeSymlink
	Ents   []DirEntRecord // TypeDir
}

// Record is one decoded journal or checkpoint record: exactly one of
// Meta, Data, or Node is non-nil.
type Record struct {
	Meta *MetaRecord
	Data *DataRecord
	Node *NodeRecord
}
