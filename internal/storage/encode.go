package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Journal record payload encoding. The WAL frames each payload with a
// length and CRC (storage/wal); this file defines only the payload:
//
//	meta: kind=1 | op u8 | setmask u8 | 9 × u64 fixed fields |
//	      3 × u32 fixed fields | name str16 | toName str16 | target str16
//	data: kind=2 | stable u8 | time i64 | id u64 | off u64 |
//	      len u32 | len bytes of content
//	node: kind=3 | type u8 | mode,uid,gid,nlink u32 | id,size,parent u64 |
//	      atime,mtime,ctime i64 | target str16 | nents u32 |
//	      nents × (name str16 | id u64 | cookie u64)
//
// Meta and data records appear in the WAL; node records appear only in
// checkpoint images (storage/diskstore), which reuse this payload
// encoding inside their own CRC framing.
//
// All integers are little-endian; str16 is a u16 length prefix plus
// bytes. Encoders fill a caller-provided buffer in place so the WAL
// append path stays allocation-free.

const (
	kindMeta = 1
	kindData = 2
	kindNode = 3

	metaFixedLen = 3 + 9*8 + 3*4 // kind, op, mask + u64s + u32s
	dataFixedLen = 2 + 3*8 + 4   // kind, stable + time,id,off + len
	nodeFixedLen = 2 + 4*4 + 6*8 // kind, type + u32s + u64s/i64s
	nodeEntFixed = 2 * 8         // per-entry id + cookie (name is str16)
)

// ErrBadRecord reports a payload that passed the WAL's CRC but does
// not decode — a format bug, not a torn write.
var ErrBadRecord = errors.New("storage: malformed journal record")

// MetaLen returns the encoded size of r.
func MetaLen(r *MetaRecord) int {
	return metaFixedLen + 2 + len(r.Name) + 2 + len(r.ToName) + 2 + len(r.Target)
}

// PutMeta encodes r into dst, which must be exactly MetaLen(r) bytes.
func PutMeta(dst []byte, r *MetaRecord) {
	dst[0] = kindMeta
	dst[1] = byte(r.Op)
	dst[2] = r.SetMask
	le := binary.LittleEndian
	le.PutUint64(dst[3:], uint64(r.Time))
	le.PutUint64(dst[11:], r.Dir)
	le.PutUint64(dst[19:], r.ID)
	le.PutUint64(dst[27:], r.Cookie)
	le.PutUint64(dst[35:], r.ToDir)
	le.PutUint64(dst[43:], r.ToCookie)
	le.PutUint64(dst[51:], r.Size)
	le.PutUint64(dst[59:], uint64(r.Mtime))
	le.PutUint64(dst[67:], uint64(r.Atime))
	le.PutUint32(dst[75:], r.Mode)
	le.PutUint32(dst[79:], r.UID)
	le.PutUint32(dst[83:], r.GID)
	off := metaFixedLen
	off = putStr16(dst, off, r.Name)
	off = putStr16(dst, off, r.ToName)
	off = putStr16(dst, off, r.Target)
	if off != len(dst) {
		panic("storage: PutMeta buffer size mismatch")
	}
}

func putStr16(dst []byte, off int, s string) int {
	if len(s) > 0xffff {
		panic("storage: journal string too long")
	}
	binary.LittleEndian.PutUint16(dst[off:], uint16(len(s)))
	off += 2
	copy(dst[off:], s)
	return off + len(s)
}

// NodeLen returns the encoded size of r.
func NodeLen(r *NodeRecord) int {
	n := nodeFixedLen + 2 + len(r.Target) + 4
	for i := range r.Ents {
		n += 2 + len(r.Ents[i].Name) + nodeEntFixed
	}
	return n
}

// PutNode encodes r into dst, which must be exactly NodeLen(r) bytes.
func PutNode(dst []byte, r *NodeRecord) {
	dst[0] = kindNode
	dst[1] = r.Type
	le := binary.LittleEndian
	le.PutUint32(dst[2:], r.Mode)
	le.PutUint32(dst[6:], r.UID)
	le.PutUint32(dst[10:], r.GID)
	le.PutUint32(dst[14:], r.Nlink)
	le.PutUint64(dst[18:], r.ID)
	le.PutUint64(dst[26:], r.Size)
	le.PutUint64(dst[34:], r.Parent)
	le.PutUint64(dst[42:], uint64(r.Atime))
	le.PutUint64(dst[50:], uint64(r.Mtime))
	le.PutUint64(dst[58:], uint64(r.Ctime))
	off := putStr16(dst, nodeFixedLen, r.Target)
	le.PutUint32(dst[off:], uint32(len(r.Ents)))
	off += 4
	for i := range r.Ents {
		e := &r.Ents[i]
		off = putStr16(dst, off, e.Name)
		le.PutUint64(dst[off:], e.ID)
		le.PutUint64(dst[off+8:], e.Cookie)
		off += nodeEntFixed
	}
	if off != len(dst) {
		panic("storage: PutNode buffer size mismatch")
	}
}

// DataLen returns the encoded size of a data record carrying n
// payload bytes.
func DataLen(n int) int { return dataFixedLen + n }

// PutData encodes r plus its payload into dst, which must be exactly
// DataLen(len(payload)) bytes.
func PutData(dst []byte, r *DataRecord, payload []byte) {
	dst[0] = kindData
	dst[1] = 0
	if r.Stable {
		dst[1] = 1
	}
	le := binary.LittleEndian
	le.PutUint64(dst[2:], uint64(r.Time))
	le.PutUint64(dst[10:], r.ID)
	le.PutUint64(dst[18:], r.Off)
	le.PutUint32(dst[26:], uint32(len(payload)))
	if copy(dst[dataFixedLen:], payload) != len(payload) || len(dst) != DataLen(len(payload)) {
		panic("storage: PutData buffer size mismatch")
	}
}

// DecodeRecord parses one journal payload. For data records the
// returned slice aliases p; callers that keep it past p's lifetime
// must copy.
func DecodeRecord(p []byte) (Record, []byte, error) {
	if len(p) < 1 {
		return Record{}, nil, ErrBadRecord
	}
	le := binary.LittleEndian
	switch p[0] {
	case kindMeta:
		if len(p) < metaFixedLen {
			return Record{}, nil, ErrBadRecord
		}
		r := &MetaRecord{
			Op:       MetaOp(p[1]),
			SetMask:  p[2],
			Time:     int64(le.Uint64(p[3:])),
			Dir:      le.Uint64(p[11:]),
			ID:       le.Uint64(p[19:]),
			Cookie:   le.Uint64(p[27:]),
			ToDir:    le.Uint64(p[35:]),
			ToCookie: le.Uint64(p[43:]),
			Size:     le.Uint64(p[51:]),
			Mtime:    int64(le.Uint64(p[59:])),
			Atime:    int64(le.Uint64(p[67:])),
			Mode:     le.Uint32(p[75:]),
			UID:      le.Uint32(p[79:]),
			GID:      le.Uint32(p[83:]),
		}
		if r.Op < OpCreate || r.Op > OpSetAttr {
			return Record{}, nil, fmt.Errorf("%w: op %d", ErrBadRecord, r.Op)
		}
		off := metaFixedLen
		var err error
		if r.Name, off, err = getStr16(p, off); err != nil {
			return Record{}, nil, err
		}
		if r.ToName, off, err = getStr16(p, off); err != nil {
			return Record{}, nil, err
		}
		if r.Target, off, err = getStr16(p, off); err != nil {
			return Record{}, nil, err
		}
		if off != len(p) {
			return Record{}, nil, ErrBadRecord
		}
		return Record{Meta: r}, nil, nil
	case kindData:
		if len(p) < dataFixedLen {
			return Record{}, nil, ErrBadRecord
		}
		r := &DataRecord{
			Stable: p[1] != 0,
			Time:   int64(le.Uint64(p[2:])),
			ID:     le.Uint64(p[10:]),
			Off:    le.Uint64(p[18:]),
			Len:    le.Uint32(p[26:]),
		}
		if len(p) != dataFixedLen+int(r.Len) {
			return Record{}, nil, ErrBadRecord
		}
		return Record{Data: r}, p[dataFixedLen:], nil
	case kindNode:
		if len(p) < nodeFixedLen {
			return Record{}, nil, ErrBadRecord
		}
		r := &NodeRecord{
			Type:   p[1],
			Mode:   le.Uint32(p[2:]),
			UID:    le.Uint32(p[6:]),
			GID:    le.Uint32(p[10:]),
			Nlink:  le.Uint32(p[14:]),
			ID:     le.Uint64(p[18:]),
			Size:   le.Uint64(p[26:]),
			Parent: le.Uint64(p[34:]),
			Atime:  int64(le.Uint64(p[42:])),
			Mtime:  int64(le.Uint64(p[50:])),
			Ctime:  int64(le.Uint64(p[58:])),
		}
		var err error
		off := nodeFixedLen
		if r.Target, off, err = getStr16(p, off); err != nil {
			return Record{}, nil, err
		}
		if off+4 > len(p) {
			return Record{}, nil, ErrBadRecord
		}
		nents := int(le.Uint32(p[off:]))
		off += 4
		// Each entry needs at least its fixed part, so a corrupt count
		// cannot drive a huge allocation.
		if nents > (len(p)-off)/(2+nodeEntFixed) {
			return Record{}, nil, ErrBadRecord
		}
		if nents > 0 {
			r.Ents = make([]DirEntRecord, nents)
		}
		for i := 0; i < nents; i++ {
			e := &r.Ents[i]
			if e.Name, off, err = getStr16(p, off); err != nil {
				return Record{}, nil, err
			}
			if off+nodeEntFixed > len(p) {
				return Record{}, nil, ErrBadRecord
			}
			e.ID = le.Uint64(p[off:])
			e.Cookie = le.Uint64(p[off+8:])
			off += nodeEntFixed
		}
		if off != len(p) {
			return Record{}, nil, ErrBadRecord
		}
		return Record{Node: r}, nil, nil
	default:
		return Record{}, nil, fmt.Errorf("%w: kind %d", ErrBadRecord, p[0])
	}
}

func getStr16(p []byte, off int) (string, int, error) {
	if off+2 > len(p) {
		return "", 0, ErrBadRecord
	}
	n := int(binary.LittleEndian.Uint16(p[off:]))
	off += 2
	if off+n > len(p) {
		return "", 0, ErrBadRecord
	}
	return string(p[off : off+n]), off + n, nil
}
