package sunrpc

import (
	"net"
	"testing"
	"time"

	"repro/internal/xdr"
)

func TestUnixAuthRoundTrip(t *testing.T) {
	a := UnixAuth(1000, []uint32{1000, 20, 5})
	uid, gids, ok := ParseUnixAuth(a)
	if !ok || uid != 1000 || len(gids) != 3 || gids[1] != 20 {
		t.Fatalf("parsed %d %v %v", uid, gids, ok)
	}
	if _, _, ok := ParseUnixAuth(NoAuth()); ok {
		t.Fatal("AUTH_NONE parsed as unix")
	}
	if _, _, ok := ParseUnixAuth(OpaqueAuth{Flavor: AuthUnix, Body: []byte{1}}); ok {
		t.Fatal("malformed body parsed")
	}
	// Nil group list encodes as empty.
	b := UnixAuth(5, nil)
	_, gids, ok = ParseUnixAuth(b)
	if !ok || len(gids) != 0 {
		t.Fatalf("nil gids: %v %v", gids, ok)
	}
}

func TestSFSAuthRoundTrip(t *testing.T) {
	if got := AuthNumber(SFSAuth(777)); got != 777 {
		t.Fatalf("AuthNumber = %d", got)
	}
	if got := AuthNumber(NoAuth()); got != 0 {
		t.Fatalf("anonymous AuthNumber = %d", got)
	}
	if got := AuthNumber(OpaqueAuth{Flavor: AuthSFS, Body: []byte{1}}); got != 0 {
		t.Fatalf("short body AuthNumber = %d", got)
	}
}

// TestDuplexPeers verifies that both ends of one connection can serve
// and call simultaneously — the transport shape of SFS's invalidation
// callbacks.
func TestDuplexPeers(t *testing.T) {
	mkServer := func(tag string) *Server {
		s := NewServer()
		s.Register(7, 1, func(proc uint32, _ OpaqueAuth, args *xdr.Decoder) (interface{}, error) {
			var in string
			if err := args.Decode(&in); err != nil {
				return nil, ErrGarbageArgs
			}
			return tag + ":" + in, nil
		})
		return s
	}
	c1, c2 := net.Pipe()
	left := NewPeer(c1, mkServer("left"))
	right := NewPeer(c2, mkServer("right"))
	defer left.Close()
	defer right.Close()

	var out string
	if err := left.Call(7, 1, 0, NoAuth(), "ping", &out); err != nil {
		t.Fatal(err)
	}
	if out != "right:ping" {
		t.Fatalf("left->right got %q", out)
	}
	if err := right.Call(7, 1, 0, NoAuth(), "pong", &out); err != nil {
		t.Fatal(err)
	}
	if out != "left:pong" {
		t.Fatalf("right->left got %q", out)
	}
}

func TestDoneSignalled(t *testing.T) {
	c1, c2 := net.Pipe()
	cl := NewClient(c1)
	select {
	case <-cl.Done():
		t.Fatal("Done closed prematurely")
	default:
	}
	c2.Close()
	select {
	case <-cl.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("Done not closed after peer hangup")
	}
}

func TestPureClientIgnoresIncomingCalls(t *testing.T) {
	c1, c2 := net.Pipe()
	cl := NewClient(c1) // no server registered
	defer cl.Close()
	// An unsolicited call arrives; the client must not crash, and
	// subsequent traffic still works.
	go func() {
		e := &xdr.Encoder{}
		e.PutUint32(99)            // xid
		e.PutUint32(0)             // msgCall
		WriteRecord(c2, e.Bytes()) //nolint:errcheck
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-cl.Done():
		t.Fatal("client died on unsolicited call")
	default:
	}
}
