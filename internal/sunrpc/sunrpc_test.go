package sunrpc

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"

	"repro/internal/xdr"
)

const (
	testProg = 400100
	testVers = 1
)

type echoArgs struct {
	N   uint32
	Msg string
}

type echoRes struct {
	N   uint32
	Msg string
}

func echoHandler(proc uint32, cred OpaqueAuth, args *xdr.Decoder) (interface{}, error) {
	switch proc {
	case 0: // null
		return struct{}{}, nil
	case 1: // echo
		var a echoArgs
		if err := args.Decode(&a); err != nil {
			return nil, ErrGarbageArgs
		}
		return echoRes{N: a.N + 1, Msg: a.Msg}, nil
	case 2: // whoami: returns the SFS auth number from the credential
		return AuthNumber(cred), nil
	case 3: // boom
		return nil, errors.New("internal failure")
	default:
		return nil, ErrProcUnavail
	}
}

func newTestPair(t *testing.T) (*Client, *Server) {
	t.Helper()
	srv := NewServer()
	srv.Register(testProg, testVers, echoHandler)
	c1, c2 := net.Pipe()
	go srv.ServeConn(c2) //nolint:errcheck
	cl := NewClient(c1)
	t.Cleanup(func() { cl.Close() })
	return cl, srv
}

func TestCallEcho(t *testing.T) {
	cl, _ := newTestPair(t)
	var res echoRes
	if err := cl.Call(testProg, testVers, 1, NoAuth(), echoArgs{N: 41, Msg: "hi"}, &res); err != nil {
		t.Fatal(err)
	}
	if res.N != 42 || res.Msg != "hi" {
		t.Fatalf("got %+v", res)
	}
}

func TestNullProc(t *testing.T) {
	cl, _ := newTestPair(t)
	if err := cl.Call(testProg, testVers, 0, NoAuth(), nil, &struct{}{}); err != nil {
		t.Fatal(err)
	}
}

func TestCredentialsDelivered(t *testing.T) {
	cl, _ := newTestPair(t)
	var got uint32
	if err := cl.Call(testProg, testVers, 2, SFSAuth(777), nil, &got); err != nil {
		t.Fatal(err)
	}
	if got != 777 {
		t.Fatalf("auth number: got %d, want 777", got)
	}
	if err := cl.Call(testProg, testVers, 2, NoAuth(), nil, &got); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("anonymous auth number: got %d, want 0", got)
	}
}

func TestProcUnavail(t *testing.T) {
	cl, _ := newTestPair(t)
	err := cl.Call(testProg, testVers, 99, NoAuth(), nil, nil)
	if !errors.Is(err, ErrProcUnavail) {
		t.Fatalf("got %v, want ErrProcUnavail", err)
	}
}

func TestProgUnavail(t *testing.T) {
	cl, _ := newTestPair(t)
	err := cl.Call(999999, 1, 0, NoAuth(), nil, nil)
	if !errors.Is(err, ErrProgUnavail) {
		t.Fatalf("got %v, want ErrProgUnavail", err)
	}
}

func TestProgMismatch(t *testing.T) {
	cl, _ := newTestPair(t)
	err := cl.Call(testProg, 42, 0, NoAuth(), nil, nil)
	if !errors.Is(err, ErrProgMismatch) {
		t.Fatalf("got %v, want ErrProgMismatch", err)
	}
}

func TestSystemErr(t *testing.T) {
	cl, _ := newTestPair(t)
	err := cl.Call(testProg, testVers, 3, NoAuth(), nil, nil)
	if !errors.Is(err, ErrSystemErr) {
		t.Fatalf("got %v, want ErrSystemErr", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	cl, _ := newTestPair(t)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i uint32) {
			defer wg.Done()
			var res echoRes
			if err := cl.Call(testProg, testVers, 1, NoAuth(), echoArgs{N: i, Msg: "c"}, &res); err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if res.N != i+1 {
				t.Errorf("call %d: got %d", i, res.N)
			}
		}(uint32(i))
	}
	wg.Wait()
}

func TestAsyncOverlap(t *testing.T) {
	cl, _ := newTestPair(t)
	var chans []<-chan record
	for i := 0; i < 10; i++ {
		ch, err := cl.Start(testProg, testVers, 1, NoAuth(), echoArgs{N: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		var res echoRes
		if err := cl.Finish(ch, &res); err != nil {
			t.Fatal(err)
		}
		if res.N != uint32(i)+1 {
			t.Fatalf("reply %d: got %d", i, res.N)
		}
	}
}

func TestClosedClientFails(t *testing.T) {
	cl, _ := newTestPair(t)
	cl.Close()
	err := cl.Call(testProg, testVers, 0, NoAuth(), nil, nil)
	if err == nil {
		t.Fatal("call on closed client succeeded")
	}
}

func TestRecordMarking(t *testing.T) {
	var buf bytes.Buffer
	msgs := [][]byte{{1}, {2, 3}, bytes.Repeat([]byte{9}, 5000), {}}
	for _, m := range msgs {
		if err := WriteRecord(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadRecord(&buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
}

func TestRecordFragments(t *testing.T) {
	// Hand-build a two-fragment record.
	var buf bytes.Buffer
	buf.Write([]byte{0x00, 0x00, 0x00, 0x03, 'a', 'b', 'c'})
	buf.Write([]byte{0x80, 0x00, 0x00, 0x02, 'd', 'e'})
	got, err := ReadRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcde" {
		t.Fatalf("got %q", got)
	}
}

func TestRecordTruncated(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0x80, 0x00, 0x01, 0x00, 'x'})
	if _, err := ReadRecord(&buf); err == nil {
		t.Fatal("truncated record accepted")
	}
	if !errors.Is(io.ErrUnexpectedEOF, io.ErrUnexpectedEOF) {
		t.Fatal("sanity")
	}
}

func TestOverTCP(t *testing.T) {
	srv := NewServer()
	srv.Register(testProg, testVers, echoHandler)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.ListenAndServe(l) //nolint:errcheck
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(conn)
	defer cl.Close()
	var res echoRes
	if err := cl.Call(testProg, testVers, 1, NoAuth(), echoArgs{N: 1, Msg: "tcp"}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Msg != "tcp" || res.N != 2 {
		t.Fatalf("got %+v", res)
	}
}

func TestOverUDP(t *testing.T) {
	srv := NewServer()
	srv.Register(testProg, testVers, echoHandler)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go srv.ServePacket(pc) //nolint:errcheck
	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(NewDatagramConn(conn))
	defer cl.Close()
	var res echoRes
	if err := cl.Call(testProg, testVers, 1, NoAuth(), echoArgs{N: 7, Msg: "udp"}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Msg != "udp" || res.N != 8 {
		t.Fatalf("got %+v", res)
	}
}

func BenchmarkNullCallPipe(b *testing.B) {
	srv := NewServer()
	srv.Register(testProg, testVers, echoHandler)
	c1, c2 := net.Pipe()
	go srv.ServeConn(c2) //nolint:errcheck
	cl := NewClient(c1)
	defer cl.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Call(testProg, testVers, 0, NoAuth(), nil, &struct{}{}); err != nil {
			b.Fatal(err)
		}
	}
}
