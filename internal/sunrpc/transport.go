package sunrpc

import (
	"net"
	"sync"

	"repro/internal/stats"
	"repro/internal/xdr"
)

// DatagramConn adapts a connected packet connection (e.g. UDP) to the
// stream-oriented io.ReadWriteCloser the RPC client and server expect.
// Each Write is sent as a single datagram; Read serves bytes from the
// most recently received datagram, so record marking stays intact as
// long as every record fits in one datagram (true for NFS-sized RPCs
// over loopback, which is how the paper's NFS 3 over UDP baseline is
// reproduced).
type DatagramConn struct {
	net.Conn
	mu   sync.Mutex
	recv []byte // 64KB receive buffer, allocated once and reused
	buf  []byte // unread tail of the current datagram (aliases recv)
}

// NewDatagramConn wraps a connected datagram socket.
func NewDatagramConn(c net.Conn) *DatagramConn { return &DatagramConn{Conn: c} }

// Read serves buffered bytes from the current datagram, receiving a new
// one into the persistent receive buffer when it is empty.
func (d *DatagramConn) Read(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.buf) == 0 {
		if d.recv == nil {
			d.recv = make([]byte, 65536)
		}
		n, err := d.Conn.Read(d.recv)
		if err != nil {
			return 0, err
		}
		d.buf = d.recv[:n]
	}
	n := copy(p, d.buf)
	d.buf = d.buf[n:]
	return n, nil
}

// ListenAndServe accepts TCP connections on l and serves RPC calls on
// each in its own goroutine until l is closed.
func (s *Server) ListenAndServe(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(conn) //nolint:errcheck // per-conn errors end that conn only
	}
}

// ServePacket serves RPC calls arriving as datagrams on pc, replying to
// each sender. The receive buffer is allocated once; each in-flight
// packet gets a pooled copy sized to what actually arrived, and at most
// the server's worker limit of packets are dispatched concurrently. It
// runs until pc is closed.
func (s *Server) ServePacket(pc net.PacketConn) error {
	buf := make([]byte, 65536)
	sem := make(chan struct{}, s.maxWorkers())
	for {
		n, addr, err := pc.ReadFrom(buf)
		if err != nil {
			return err
		}
		bp := getBuf()
		pkt := append((*bp)[:0], buf[:n]...)
		*bp = pkt
		sem <- struct{}{}
		go func(bp *[]byte, pkt []byte, addr net.Addr) {
			defer func() { <-sem; putBuf(bp) }()
			// Strip the record mark if present.
			if len(pkt) < 4 {
				return
			}
			e := xdr.GetEncoder()
			defer xdr.PutEncoder(e)
			ok, err := s.dispatch(pkt[4:], e, nil) // datagram path: untraced
			if err != nil || !ok {
				return
			}
			// Datagram replies must go out as one packet, so the
			// segments (possibly including borrowed payload when gather
			// is on) are flattened into a pooled buffer; the flatten
			// pass is the one copy the accounting charges here.
			rlen := e.Len()
			op := getBuf()
			out := (*op)[:0]
			var hdr [4]byte
			hdr[0] = 0x80
			hdr[1] = byte(rlen >> 16)
			hdr[2] = byte(rlen >> 8)
			hdr[3] = byte(rlen)
			out = append(out, hdr[:]...)
			for _, seg := range e.Segments() {
				out = append(out, seg...)
			}
			if payload := e.PayloadBytes(); payload > 0 {
				stats.NoteWirePayload(payload)
				if b := e.BorrowedBytes(); b > 0 {
					stats.NoteWireBorrowed(b)
				}
				stats.NoteWireCopied(e.CopiedBytes() + payload)
				stats.ObserveWireCopies(e.CopiedBytes()+payload, payload)
			}
			pc.WriteTo(out, addr) //nolint:errcheck // best-effort datagram
			*op = out
			putBuf(op)
		}(bp, pkt, addr)
	}
}
