package sunrpc

// RPC-layer observability: every Server owns a Metrics block (shared
// across connections when the owner passes one Metrics to many
// Servers via SetMetrics, as the NFS server does for its
// per-connection sessions). Counters sit directly on the dispatch
// path, so everything here is allocation-free once a program's
// counter table exists: a counter bump is one atomic add, the
// per-proc lookup is an RLock'd map read, and trace recording is a
// single atomic load while disabled.

import (
	"fmt"
	"sync"

	"repro/internal/stats"
)

// maxProcTrack bounds the per-procedure counter table of one
// registered program. NFSv3 plus the SFS extension procedures top
// out at 103; anything at or above the bound is aggregated into an
// "other" slot rather than dropped.
const maxProcTrack = 128

// progMetrics is the per-(program, version) counter table.
type progMetrics struct {
	calls [maxProcTrack]stats.Counter
	errs  [maxProcTrack]stats.Counter
	otherCalls,
	otherErrs stats.Counter
}

func (p *progMetrics) observe(proc uint32, failed bool) {
	if proc < maxProcTrack {
		p.calls[proc].Inc()
		if failed {
			p.errs[proc].Inc()
		}
		return
	}
	p.otherCalls.Inc()
	if failed {
		p.otherErrs.Inc()
	}
}

// Metrics instruments a Server's dispatch pipeline: aggregate
// call/reply counters, the dispatch-queue depth (calls read off the
// wire but not yet replied), worker-pool occupancy, a per-call
// latency histogram in microseconds, per-procedure counters, and an
// xid-tagged trace ring (off until SetEnabled).
type Metrics struct {
	Calls   stats.Counter // well-formed calls dispatched
	Replies stats.Counter // replies encoded successfully
	Dropped stats.Counter // unparseable records dropped silently
	Errors  stats.Counter // server-side encode failures

	InFlight stats.Gauge     // dispatch-queue depth
	Workers  stats.Gauge     // workers executing a handler
	Latency  stats.Histogram // per-call dispatch-to-reply, µs
	Trace    *stats.TraceRing
	// Stages aggregates per-stage latency histograms from traced spans
	// (populated only while Trace is enabled).
	Stages *stats.StageSet

	mu    sync.RWMutex
	progs map[progVers]*progMetrics
}

// NewMetrics returns a fresh metrics block with a 256-span trace
// ring (disabled until Trace.SetEnabled(true)).
func NewMetrics() *Metrics { return NewMetricsSized(256) }

// NewMetricsSized is NewMetrics with a caller-chosen trace-ring
// capacity (the daemons expose it as a flag).
func NewMetricsSized(spans int) *Metrics {
	return &Metrics{
		Trace:  stats.NewTraceRing(spans),
		Stages: new(stats.StageSet),
		progs:  make(map[progVers]*progMetrics),
	}
}

// prog returns (creating on first use) the counter table for pv.
func (m *Metrics) prog(pv progVers) *progMetrics {
	m.mu.RLock()
	pm := m.progs[pv]
	m.mu.RUnlock()
	if pm != nil {
		return pm
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if pm = m.progs[pv]; pm == nil {
		pm = new(progMetrics)
		m.progs[pv] = pm
	}
	return pm
}

// ProcCount is one procedure's totals in a snapshot.
type ProcCount struct {
	Calls  uint64 `json:"calls"`
	Errors uint64 `json:"errors,omitempty"`
}

// MetricsSnapshot is the JSON form of a Metrics block. Per-procedure
// keys are "prog.vers.proc" (numeric — the RPC layer does not know
// procedure names; the NFS server exposes named counters one layer
// up).
type MetricsSnapshot struct {
	Calls    uint64               `json:"calls"`
	Replies  uint64               `json:"replies"`
	Dropped  uint64               `json:"dropped,omitempty"`
	Errors   uint64               `json:"errors,omitempty"`
	InFlight stats.GaugeSnapshot  `json:"in_flight"`
	Workers  stats.GaugeSnapshot  `json:"workers"`
	Latency  stats.HistSnapshot   `json:"latency_us"`
	Procs    map[string]ProcCount   `json:"procs,omitempty"`
	Trace    stats.TraceSnapshot    `json:"trace"`
	Stages   stats.StageSetSnapshot `json:"stages,omitempty"`
}

// Snapshot captures the metrics block.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Calls:    m.Calls.Load(),
		Replies:  m.Replies.Load(),
		Dropped:  m.Dropped.Load(),
		Errors:   m.Errors.Load(),
		InFlight: m.InFlight.Snapshot(),
		Workers:  m.Workers.Snapshot(),
		Latency:  m.Latency.Snapshot(),
		Trace:    m.Trace.Snapshot(),
	}
	if m.Stages != nil {
		s.Stages = m.Stages.Snapshot()
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for pv, pm := range m.progs {
		for proc := range pm.calls {
			if n := pm.calls[proc].Load(); n > 0 {
				if s.Procs == nil {
					s.Procs = make(map[string]ProcCount)
				}
				s.Procs[fmt.Sprintf("%d.%d.%d", pv.prog, pv.vers, proc)] =
					ProcCount{Calls: n, Errors: pm.errs[proc].Load()}
			}
		}
		if n := pm.otherCalls.Load(); n > 0 {
			if s.Procs == nil {
				s.Procs = make(map[string]ProcCount)
			}
			s.Procs[fmt.Sprintf("%d.%d.other", pv.prog, pv.vers)] =
				ProcCount{Calls: n, Errors: pm.otherErrs.Load()}
		}
	}
	return s
}

// ---------------------------------------------------------------------
// Wire-level counters: process-wide totals of record-marked messages
// through WriteRecord/ReadRecord, shared by every connection in the
// process (clients, servers, callbacks).

var wire struct {
	recordsOut, bytesOut stats.Counter
	recordsIn, bytesIn   stats.Counter
}

// WireStats is the JSON form of the process-wide wire counters.
// Bytes include the 4-byte record-marking header per fragment.
type WireStats struct {
	RecordsOut uint64 `json:"records_out"`
	BytesOut   uint64 `json:"bytes_out"`
	RecordsIn  uint64 `json:"records_in"`
	BytesIn    uint64 `json:"bytes_in"`
}

// WireSnapshot captures the process-wide wire counters.
func WireSnapshot() WireStats {
	return WireStats{
		RecordsOut: wire.recordsOut.Load(),
		BytesOut:   wire.bytesOut.Load(),
		RecordsIn:  wire.recordsIn.Load(),
		BytesIn:    wire.bytesIn.Load(),
	}
}
