package sunrpc

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"repro/internal/xdr"
)

// callRecord hand-rolls one framed call so tests can watch raw reply
// ordering on the wire, below the XID-matching of Client.
func callRecord(t *testing.T, xid, proc uint32) []byte {
	t.Helper()
	e := &xdr.Encoder{}
	e.PutUint32(xid)
	e.PutUint32(msgCall)
	if err := e.Encode(callHeader{
		RPCVers: RPCVersion,
		Prog:    testProg,
		Vers:    testVers,
		Proc:    proc,
		Cred:    NoAuth(),
		Verf:    NoAuth(),
	}); err != nil {
		t.Fatal(err)
	}
	return e.Bytes()
}

// gateServer registers a handler where proc 10 blocks until gate is
// closed and proc 11 returns immediately.
func gateServer(t *testing.T) (*Server, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	srv := NewServer()
	srv.Register(testProg, testVers, func(proc uint32, cred OpaqueAuth, args *xdr.Decoder) (interface{}, error) {
		switch proc {
		case 10:
			<-gate
			return uint32(10), nil
		case 11:
			return uint32(11), nil
		}
		return nil, ErrProcUnavail
	})
	return srv, gate
}

func replyXID(t *testing.T, conn net.Conn) uint32 {
	t.Helper()
	rec, err := ReadRecord(conn)
	if err != nil {
		t.Fatal(err)
	}
	return binary.BigEndian.Uint32(rec)
}

// TestOutOfOrderReplies: with concurrent dispatch, a fast call issued
// after a stalled one overtakes it on the wire — XIDs disambiguate.
func TestOutOfOrderReplies(t *testing.T) {
	srv, gate := gateServer(t)
	c1, c2 := net.Pipe()
	defer c1.Close()
	go srv.ServeConn(c2)                                          //nolint:errcheck
	if err := WriteRecord(c1, callRecord(t, 1, 10)); err != nil { // stalls
		t.Fatal(err)
	}
	if err := WriteRecord(c1, callRecord(t, 2, 11)); err != nil { // fast
		t.Fatal(err)
	}
	if xid := replyXID(t, c1); xid != 2 {
		t.Fatalf("first reply xid = %d, want the fast call (2)", xid)
	}
	close(gate)
	if xid := replyXID(t, c1); xid != 1 {
		t.Fatalf("second reply xid = %d, want the stalled call (1)", xid)
	}
}

// TestInOrderReplies: the opt-in mode restores call-order replies even
// when a later call finishes first.
func TestInOrderReplies(t *testing.T) {
	srv, gate := gateServer(t)
	srv.SetInOrder(true)
	c1, c2 := net.Pipe()
	defer c1.Close()
	go srv.ServeConn(c2) //nolint:errcheck
	if err := WriteRecord(c1, callRecord(t, 1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := WriteRecord(c1, callRecord(t, 2, 11)); err != nil {
		t.Fatal(err)
	}
	time.AfterFunc(20*time.Millisecond, func() { close(gate) })
	if xid := replyXID(t, c1); xid != 1 {
		t.Fatalf("first reply xid = %d, want 1 (call order)", xid)
	}
	if xid := replyXID(t, c1); xid != 2 {
		t.Fatalf("second reply xid = %d, want 2", xid)
	}
}

// TestSerialWorkers: SetWorkers(1) selects the strictly serial path.
func TestSerialWorkers(t *testing.T) {
	srv := NewServer()
	srv.Register(testProg, testVers, echoHandler)
	srv.SetWorkers(1)
	c1, c2 := net.Pipe()
	go srv.ServeConn(c2) //nolint:errcheck
	cl := NewClient(c1)
	defer cl.Close()
	var res echoRes
	if err := cl.Call(testProg, testVers, 1, NoAuth(), echoArgs{N: 1, Msg: "serial"}, &res); err != nil {
		t.Fatal(err)
	}
	if res.N != 2 || res.Msg != "serial" {
		t.Fatalf("got %+v", res)
	}
}

// TestConcurrentCallsOneClient issues many concurrent calls through
// one Client over one connection; every reply must match its call.
func TestConcurrentCallsOneClient(t *testing.T) {
	cl, _ := newTestPair(t)
	const n = 64
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			var res echoRes
			err := cl.Call(testProg, testVers, 1, NoAuth(), echoArgs{N: uint32(i), Msg: "m"}, &res)
			if err == nil && res.N != uint32(i)+1 {
				err = errReplyMismatch{want: uint32(i) + 1, got: res.N}
			}
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

type errReplyMismatch struct{ want, got uint32 }

func (e errReplyMismatch) Error() string {
	return "reply mismatch"
}
