// Package sunrpc implements the ONC Remote Procedure Call protocol
// (RFC 1831) used between every pair of SFS components.
//
// The paper's implementation describes all inter-program traffic with
// Sun RPC and XDR (§3.2): the exact bytes exchanged between programs
// are unambiguously described in XDR, and the client library is
// asynchronous. This package provides:
//
//   - RPC call/reply message framing (RFC 1831 §8),
//   - record marking for stream transports (RFC 1831 §10),
//   - an asynchronous client multiplexing concurrent calls over one
//     connection, and
//   - a server that dispatches registered (program, version) handlers.
//
// Transports are plain io.ReadWriteClosers, so the same client and
// server run over TCP, UDP (datagram framing), in-process pipes, the
// latency-shaped connections of internal/netsim, and the encrypted
// channels of internal/secchan.
package sunrpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/xdr"
)

// Message types (RFC 1831 §8).
const (
	msgCall  = 0
	msgReply = 1
)

// Reply status.
const (
	replyAccepted = 0
	replyDenied   = 1
)

// Accept status.
const (
	acceptSuccess      = 0
	acceptProgUnavail  = 1
	acceptProgMismatch = 2
	acceptProcUnavail  = 3
	acceptGarbageArgs  = 4
	acceptSystemErr    = 5
)

// RPCVersion is the ONC RPC protocol version.
const RPCVersion = 2

// Auth flavors.
const (
	// AuthNone carries no credentials.
	AuthNone = 0
	// AuthUnix carries numeric Unix credentials, used by the plain
	// NFS baseline (the paper's NFS 3 configuration).
	AuthUnix = 1
	// AuthSFS carries an SFS authentication number assigned during
	// the user-authentication protocol (paper §3.1.2). Its body is a
	// 4-byte big-endian authentication number; zero means anonymous.
	AuthSFS = 390041
)

// Errors returned by calls.
var (
	ErrProgUnavail  = errors.New("sunrpc: program unavailable")
	ErrProcUnavail  = errors.New("sunrpc: procedure unavailable")
	ErrProgMismatch = errors.New("sunrpc: program version mismatch")
	ErrGarbageArgs  = errors.New("sunrpc: garbage arguments")
	ErrSystemErr    = errors.New("sunrpc: remote system error")
	ErrAuth         = errors.New("sunrpc: authentication rejected")
	ErrClosed       = errors.New("sunrpc: connection closed")
)

// OpaqueAuth is the authenticator carried in call and reply headers.
type OpaqueAuth struct {
	Flavor uint32
	Body   []byte
}

// NoAuth is the AUTH_NONE authenticator.
func NoAuth() OpaqueAuth { return OpaqueAuth{Flavor: AuthNone, Body: []byte{}} }

// SFSAuth returns an AUTH_SFS authenticator carrying authNo, the
// authentication number handed out by the server after a successful
// user-authentication exchange. Zero is reserved for anonymous access.
func SFSAuth(authNo uint32) OpaqueAuth {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], authNo)
	return OpaqueAuth{Flavor: AuthSFS, Body: b[:]}
}

// AuthNumber extracts the authentication number from an AUTH_SFS
// authenticator, or 0 (anonymous) for any other flavor.
func AuthNumber(a OpaqueAuth) uint32 {
	if a.Flavor != AuthSFS || len(a.Body) != 4 {
		return 0
	}
	return binary.BigEndian.Uint32(a.Body)
}

// unixCred is the XDR body of an AUTH_UNIX authenticator.
type unixCred struct {
	UID  uint32
	GIDs []uint32
}

// UnixAuth returns an AUTH_UNIX authenticator for uid with the given
// group list.
func UnixAuth(uid uint32, gids []uint32) OpaqueAuth {
	if gids == nil {
		gids = []uint32{}
	}
	return OpaqueAuth{Flavor: AuthUnix, Body: xdr.MustMarshal(unixCred{UID: uid, GIDs: gids})}
}

// ParseUnixAuth extracts Unix credentials from an AUTH_UNIX
// authenticator; ok is false for other flavors or malformed bodies.
func ParseUnixAuth(a OpaqueAuth) (uid uint32, gids []uint32, ok bool) {
	if a.Flavor != AuthUnix {
		return 0, nil, false
	}
	var c unixCred
	if err := xdr.Unmarshal(a.Body, &c); err != nil {
		return 0, nil, false
	}
	return c.UID, c.GIDs, true
}

// callHeader is the fixed prefix of an RPC call after xid and mtype.
type callHeader struct {
	RPCVers uint32
	Prog    uint32
	Vers    uint32
	Proc    uint32
	Cred    OpaqueAuth
	Verf    OpaqueAuth
}

// A Record is one framed RPC message.
type record []byte

// WriteRecord writes one record-marked message (RFC 1831 §10) to w.
// The entire message is sent as a single fragment with the last-
// fragment bit set.
func WriteRecord(w io.Writer, payload []byte) error {
	if len(payload) > 0x7fffffff {
		return errors.New("sunrpc: record too large")
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload))|0x80000000)
	// Single write where possible keeps datagram-like transports whole.
	buf := make([]byte, 0, 4+len(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// MaxRecord bounds the size of a reassembled record.
const MaxRecord = 64 << 20

// ReadRecord reads one record-marked message, reassembling fragments.
func ReadRecord(r io.Reader) ([]byte, error) {
	var out []byte
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		h := binary.BigEndian.Uint32(hdr[:])
		last := h&0x80000000 != 0
		n := int(h & 0x7fffffff)
		if n+len(out) > MaxRecord {
			return nil, errors.New("sunrpc: record exceeds maximum size")
		}
		frag := make([]byte, n)
		if _, err := io.ReadFull(r, frag); err != nil {
			return nil, err
		}
		out = append(out, frag...)
		if last {
			return out, nil
		}
	}
}

// Client is an asynchronous RPC client. Multiple goroutines may issue
// calls concurrently over the same transport; replies are matched to
// calls by xid. A Client created with NewPeer additionally dispatches
// incoming calls to a Server, making the connection a full duplex RPC
// peer — this is how the SFS server issues cache-invalidation
// callbacks to clients over the same secure channel (paper §3.3).
type Client struct {
	mu      sync.Mutex
	conn    io.ReadWriteCloser
	nextXID uint32
	pending map[uint32]chan record
	err     error
	closed  bool
	wmu     sync.Mutex // serializes writes
	srv     *Server    // nil for a pure client
	done    chan struct{}
}

// NewClient starts a client on conn and begins reading replies.
func NewClient(conn io.ReadWriteCloser) *Client { return NewPeer(conn, nil) }

// NewPeer starts a duplex peer on conn: replies are matched to local
// calls, and incoming calls (if srv is non-nil) are dispatched to srv
// with replies sent back over the same connection.
func NewPeer(conn io.ReadWriteCloser, srv *Server) *Client {
	c := &Client{
		conn:    conn,
		nextXID: 1,
		pending: make(map[uint32]chan record),
		srv:     srv,
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Done is closed when the connection fails or is closed.
func (c *Client) Done() <-chan struct{} { return c.done }

func (c *Client) readLoop() {
	for {
		rec, err := ReadRecord(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		if len(rec) < 8 {
			continue
		}
		if binary.BigEndian.Uint32(rec[4:]) == msgCall {
			if c.srv != nil {
				go c.serveCall(rec)
			}
			continue
		}
		xid := binary.BigEndian.Uint32(rec)
		c.mu.Lock()
		ch, ok := c.pending[xid]
		if ok {
			delete(c.pending, xid)
		}
		c.mu.Unlock()
		if ok {
			ch <- rec
		}
	}
}

func (c *Client) serveCall(rec record) {
	reply, err := c.srv.dispatch(rec)
	if err != nil || reply == nil {
		return
	}
	c.wmu.Lock()
	err = WriteRecord(c.conn, reply)
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
	for xid, ch := range c.pending {
		close(ch)
		delete(c.pending, xid)
	}
}

// Close tears down the transport and fails all pending calls.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.fail(ErrClosed)
	return err
}

// Call performs a synchronous RPC: it marshals args, sends the call
// with the given credentials, waits for the matching reply, and
// unmarshals the result into res (which may be nil for void results).
func (c *Client) Call(prog, vers, proc uint32, cred OpaqueAuth, args, res interface{}) error {
	ch, err := c.Start(prog, vers, proc, cred, args)
	if err != nil {
		return err
	}
	return c.Finish(ch, res)
}

// Start issues an asynchronous call and returns a channel on which the
// raw reply record will arrive. Use Finish to decode it. This is the
// mechanism by which the client overlaps many outstanding NFS RPCs.
func (c *Client) Start(prog, vers, proc uint32, cred OpaqueAuth, args interface{}) (<-chan record, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	xid := c.nextXID
	c.nextXID++
	ch := make(chan record, 1)
	c.pending[xid] = ch
	c.mu.Unlock()

	e := &xdr.Encoder{}
	e.PutUint32(xid)
	e.PutUint32(msgCall)
	if err := e.Encode(callHeader{
		RPCVers: RPCVersion,
		Prog:    prog,
		Vers:    vers,
		Proc:    proc,
		Cred:    cred,
		Verf:    NoAuth(),
	}); err != nil {
		c.cancel(xid)
		return nil, err
	}
	if args != nil {
		if err := e.Encode(args); err != nil {
			c.cancel(xid)
			return nil, err
		}
	}
	c.wmu.Lock()
	err := WriteRecord(c.conn, e.Bytes())
	c.wmu.Unlock()
	if err != nil {
		c.cancel(xid)
		return nil, err
	}
	return ch, nil
}

func (c *Client) cancel(xid uint32) {
	c.mu.Lock()
	delete(c.pending, xid)
	c.mu.Unlock()
}

// Finish waits for the reply started by Start and decodes it into res.
func (c *Client) Finish(ch <-chan record, res interface{}) error {
	rec, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	return decodeReply(rec, res)
}

func decodeReply(rec record, res interface{}) error {
	d := xdr.NewDecoder(rec)
	if _, err := d.Uint32(); err != nil { // xid
		return err
	}
	mtype, err := d.Uint32()
	if err != nil {
		return err
	}
	if mtype != msgReply {
		return fmt.Errorf("sunrpc: unexpected message type %d", mtype)
	}
	stat, err := d.Uint32()
	if err != nil {
		return err
	}
	if stat == replyDenied {
		return ErrAuth
	}
	if stat != replyAccepted {
		return fmt.Errorf("sunrpc: bad reply status %d", stat)
	}
	var verf OpaqueAuth
	if err := d.Decode(&verf); err != nil {
		return err
	}
	astat, err := d.Uint32()
	if err != nil {
		return err
	}
	switch astat {
	case acceptSuccess:
	case acceptProgUnavail:
		return ErrProgUnavail
	case acceptProgMismatch:
		return ErrProgMismatch
	case acceptProcUnavail:
		return ErrProcUnavail
	case acceptGarbageArgs:
		return ErrGarbageArgs
	default:
		return ErrSystemErr
	}
	if res == nil {
		return nil
	}
	return d.Decode(res)
}

// Handler processes one procedure call. args is the undecoded argument
// body; the handler returns the reply body value (marshaled by the
// server) or an error mapped to an RPC-level failure.
type Handler func(proc uint32, cred OpaqueAuth, args *xdr.Decoder) (interface{}, error)

// progVers identifies a registered program.
type progVers struct{ prog, vers uint32 }

// Server dispatches RPC calls on accepted transports.
type Server struct {
	mu       sync.RWMutex
	handlers map[progVers]Handler
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{handlers: make(map[progVers]Handler)}
}

// Register installs h for (prog, vers), replacing any previous handler.
func (s *Server) Register(prog, vers uint32, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[progVers{prog, vers}] = h
}

// ServeConn handles calls on conn until it fails, then closes it.
// Calls are served sequentially per connection, matching the in-order
// semantics the SFS secure channel provides.
func (s *Server) ServeConn(conn io.ReadWriteCloser) error {
	defer conn.Close()
	for {
		rec, err := ReadRecord(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		reply, err := s.dispatch(rec)
		if err != nil {
			return err
		}
		if reply != nil {
			if err := WriteRecord(conn, reply); err != nil {
				return err
			}
		}
	}
}

func (s *Server) dispatch(rec []byte) ([]byte, error) {
	d := xdr.NewDecoder(rec)
	xid, err := d.Uint32()
	if err != nil {
		return nil, nil //nolint:nilerr // unparseable record: drop
	}
	mtype, err := d.Uint32()
	if err != nil || mtype != msgCall {
		return nil, nil
	}
	var hdr callHeader
	if err := d.Decode(&hdr); err != nil {
		return nil, nil //nolint:nilerr
	}
	if hdr.RPCVers != RPCVersion {
		return replyMsg(xid, acceptSystemErr, nil)
	}
	s.mu.RLock()
	h, ok := s.handlers[progVers{hdr.Prog, hdr.Vers}]
	s.mu.RUnlock()
	if !ok {
		s.mu.RLock()
		progKnown := false
		for pv := range s.handlers {
			if pv.prog == hdr.Prog {
				progKnown = true
				break
			}
		}
		s.mu.RUnlock()
		if progKnown {
			return replyMsg(xid, acceptProgMismatch, nil)
		}
		return replyMsg(xid, acceptProgUnavail, nil)
	}
	res, err := h(hdr.Proc, hdr.Cred, d)
	if err != nil {
		switch {
		case errors.Is(err, ErrProcUnavail):
			return replyMsg(xid, acceptProcUnavail, nil)
		case errors.Is(err, ErrGarbageArgs):
			return replyMsg(xid, acceptGarbageArgs, nil)
		default:
			return replyMsg(xid, acceptSystemErr, nil)
		}
	}
	return replyMsg(xid, acceptSuccess, res)
}

func replyMsg(xid, astat uint32, res interface{}) ([]byte, error) {
	e := &xdr.Encoder{}
	e.PutUint32(xid)
	e.PutUint32(msgReply)
	e.PutUint32(replyAccepted)
	if err := e.Encode(NoAuth()); err != nil {
		return nil, err
	}
	e.PutUint32(astat)
	if astat == acceptSuccess && res != nil {
		if err := e.Encode(res); err != nil {
			return nil, err
		}
	}
	if astat == acceptProgMismatch {
		e.PutUint32(0) // low
		e.PutUint32(0) // high
	}
	return e.Bytes(), nil
}
