// Package sunrpc implements the ONC Remote Procedure Call protocol
// (RFC 1831) used between every pair of SFS components.
//
// The paper's implementation describes all inter-program traffic with
// Sun RPC and XDR (§3.2): the exact bytes exchanged between programs
// are unambiguously described in XDR, and the client library is
// asynchronous. This package provides:
//
//   - RPC call/reply message framing (RFC 1831 §8),
//   - record marking for stream transports (RFC 1831 §10),
//   - an asynchronous client multiplexing concurrent calls over one
//     connection, and
//   - a server that dispatches registered (program, version) handlers.
//
// Transports are plain io.ReadWriteClosers, so the same client and
// server run over TCP, UDP (datagram framing), in-process pipes, the
// latency-shaped connections of internal/netsim, and the encrypted
// channels of internal/secchan.
package sunrpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/xdr"
)

// Message types (RFC 1831 §8).
const (
	msgCall  = 0
	msgReply = 1
)

// Reply status.
const (
	replyAccepted = 0
	replyDenied   = 1
)

// Accept status.
const (
	acceptSuccess      = 0
	acceptProgUnavail  = 1
	acceptProgMismatch = 2
	acceptProcUnavail  = 3
	acceptGarbageArgs  = 4
	acceptSystemErr    = 5
)

// RPCVersion is the ONC RPC protocol version.
const RPCVersion = 2

// Auth flavors.
const (
	// AuthNone carries no credentials.
	AuthNone = 0
	// AuthUnix carries numeric Unix credentials, used by the plain
	// NFS baseline (the paper's NFS 3 configuration).
	AuthUnix = 1
	// AuthSFS carries an SFS authentication number assigned during
	// the user-authentication protocol (paper §3.1.2). Its body is a
	// 4-byte big-endian authentication number; zero means anonymous.
	AuthSFS = 390041
)

// Errors returned by calls.
var (
	ErrProgUnavail  = errors.New("sunrpc: program unavailable")
	ErrProcUnavail  = errors.New("sunrpc: procedure unavailable")
	ErrProgMismatch = errors.New("sunrpc: program version mismatch")
	ErrGarbageArgs  = errors.New("sunrpc: garbage arguments")
	ErrSystemErr    = errors.New("sunrpc: remote system error")
	ErrAuth         = errors.New("sunrpc: authentication rejected")
	ErrClosed       = errors.New("sunrpc: connection closed")
)

// OpaqueAuth is the authenticator carried in call and reply headers.
type OpaqueAuth struct {
	Flavor uint32
	Body   []byte
}

// NoAuth is the AUTH_NONE authenticator.
func NoAuth() OpaqueAuth { return OpaqueAuth{Flavor: AuthNone, Body: []byte{}} }

// SFSAuth returns an AUTH_SFS authenticator carrying authNo, the
// authentication number handed out by the server after a successful
// user-authentication exchange. Zero is reserved for anonymous access.
func SFSAuth(authNo uint32) OpaqueAuth {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], authNo)
	return OpaqueAuth{Flavor: AuthSFS, Body: b[:]}
}

// AuthNumber extracts the authentication number from an AUTH_SFS
// authenticator, or 0 (anonymous) for any other flavor.
func AuthNumber(a OpaqueAuth) uint32 {
	if a.Flavor != AuthSFS || len(a.Body) != 4 {
		return 0
	}
	return binary.BigEndian.Uint32(a.Body)
}

// unixCred is the XDR body of an AUTH_UNIX authenticator.
type unixCred struct {
	UID  uint32
	GIDs []uint32
}

// UnixAuth returns an AUTH_UNIX authenticator for uid with the given
// group list.
func UnixAuth(uid uint32, gids []uint32) OpaqueAuth {
	if gids == nil {
		gids = []uint32{}
	}
	return OpaqueAuth{Flavor: AuthUnix, Body: xdr.MustMarshal(unixCred{UID: uid, GIDs: gids})}
}

// ParseUnixAuth extracts Unix credentials from an AUTH_UNIX
// authenticator; ok is false for other flavors or malformed bodies.
func ParseUnixAuth(a OpaqueAuth) (uid uint32, gids []uint32, ok bool) {
	if a.Flavor != AuthUnix {
		return 0, nil, false
	}
	var c unixCred
	if err := xdr.Unmarshal(a.Body, &c); err != nil {
		return 0, nil, false
	}
	return c.UID, c.GIDs, true
}

// callHeader is the fixed prefix of an RPC call after xid and mtype.
type callHeader struct {
	RPCVers uint32
	Prog    uint32
	Vers    uint32
	Proc    uint32
	Cred    OpaqueAuth
	Verf    OpaqueAuth
}

// A Record is one framed RPC message.
type record []byte

// bufPool holds framing scratch buffers for the hot wire path. A
// pooled buffer is only ever held for the duration of one Write: the
// transport must not retain the slice after Write returns, which every
// io.Writer already promises.
var bufPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 4+8192+256) // one NFS READ + headers
		return &b
	},
}

// maxPooledBuf caps what goes back in the pool so one giant record
// cannot pin megabytes for the rest of the process lifetime.
const maxPooledBuf = 1 << 20

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	bufPool.Put(b)
}

// gatherOn gates the scatter-gather wire path end to end: encoder
// borrow mode at dispatch/Start, decoder borrow mode in decodeReply,
// and the SegmentWriter route in WriteRecordEncoder. On by default;
// turning it off restores the flat copy-everything pipeline (the
// ablation mode the wire-copy invariant test measures "before" with).
var gatherOn atomic.Bool

func init() { gatherOn.Store(true) }

// SetGather toggles the zero-copy wire path process-wide. Affects
// records encoded after the call.
func SetGather(on bool) { gatherOn.Store(on) }

// GatherEnabled reports whether the zero-copy wire path is on.
func GatherEnabled() bool { return gatherOn.Load() }

// SealTimer and OpenTimer are implemented by transports (the secure
// channel) that account their per-record cryptographic work in
// monotonic nanosecond accumulators. The RPC layer reads the
// accumulator before and after moving one record; because writes are
// serialized under the connection's write lock and all reads happen on
// one goroutine, the delta is exactly that record's own seal or open
// cost. The accumulators only advance while stage timing is on
// (stats.StageTimingOn), so reading them is free in the steady state.
type SealTimer interface{ SealWorkNS() int64 }

// OpenTimer is SealTimer's receive-side twin: cumulative
// decrypt+MAC-verify nanoseconds.
type OpenTimer interface{ OpenWorkNS() int64 }

// principalOf extracts the caller identity for a traced span: the SFS
// authentication number, or the unix uid on the plain-NFS baseline.
// Only called while tracing is on (AUTH_UNIX parsing allocates).
func principalOf(a OpaqueAuth) uint32 {
	if a.Flavor == AuthSFS {
		return AuthNumber(a)
	}
	if uid, _, ok := ParseUnixAuth(a); ok {
		return uid
	}
	return 0
}

// writeReplyTraced writes the reply record, splitting the cost between
// the reply_seal stage (the secure channel's MAC+encrypt work, read
// from the transport's SealTimer) and reply_write (framing plus the
// transport write itself). Must run under the connection's write lock
// so the seal-work delta belongs to this record alone. With a nil
// clock it is exactly WriteRecordEncoder.
func writeReplyTraced(w io.Writer, e *xdr.Encoder, clk *stats.StageClock) error {
	if clk == nil {
		return WriteRecordEncoder(w, e)
	}
	st, _ := w.(SealTimer)
	var seal0 int64
	if st != nil {
		seal0 = st.SealWorkNS()
	}
	t0 := time.Now()
	err := WriteRecordEncoder(w, e)
	writeNS := int64(time.Since(t0))
	var sealNS int64
	if st != nil {
		sealNS = st.SealWorkNS() - seal0
	}
	clk.Add(stats.StageReplySeal, sealNS)
	clk.Add(stats.StageReplyWrite, writeNS-sealNS)
	clk.Span.Bytes += uint64(e.Len()) + 4
	return err
}

// serverClock builds the stage clock for one incoming call: anchored
// at the moment the record finished reading (tRead), with the record's
// open work credited to srv_open. The queue stage starts accumulating
// immediately; the caller ends it when a worker picks the call up.
func serverClock(tRead time.Time, openNS int64) *stats.StageClock {
	clk := stats.NewStageClock()
	clk.RestartAt(tRead)
	clk.Add(stats.StageSrvOpen, openNS)
	return clk
}

// SegmentWriter is implemented by transports that can consume a
// record as a segment list — writing vectored or sealing in place —
// instead of requiring one contiguous buffer. Segments must be
// treated as immutable and not retained after WriteSegments returns.
// n is the total bytes written; copied is how many bytes the
// transport staged through an intermediate buffer (0 for a vectored
// write, the record length for a seal-in-place pass).
type SegmentWriter interface {
	WriteSegments(segs [][]byte) (n int, copied int, err error)
}

// segScratch is the per-write scratch of WriteRecordEncoder: the
// record-marking header lives in the same heap object as the segment
// list so neither escapes to a fresh allocation per record.
type segScratch struct {
	hdr  [4]byte
	segs [][]byte
}

var segPool = sync.Pool{
	New: func() interface{} { return &segScratch{segs: make([][]byte, 0, 8)} },
}

// WriteRecordEncoder writes e's encoding as one record-marked message
// (RFC 1831 §10) to w, without flattening when w is a SegmentWriter
// and the gather path is on: the header and e's segments — including
// borrowed payload slices — go straight to the transport. Otherwise
// the record is flattened through a pooled buffer exactly like
// WriteRecord. Wire-copy accounting (DESIGN.md §12) happens here:
// payload-class bytes are tallied once per record, every flatten or
// staging pass adds to wire_bytes_copied, and the per-record
// copies-per-payload ratio feeds the histogram.
func WriteRecordEncoder(w io.Writer, e *xdr.Encoder) error {
	n := e.Len()
	if n > 0x7fffffff {
		return errors.New("sunrpc: record too large")
	}
	payload := e.PayloadBytes()
	copied := e.CopiedBytes() // flat appends inside the encoder
	var err error
	if sw, ok := w.(SegmentWriter); ok && GatherEnabled() {
		sc := segPool.Get().(*segScratch)
		binary.BigEndian.PutUint32(sc.hdr[:], uint32(n)|0x80000000)
		sc.segs = append(sc.segs[:0], sc.hdr[:])
		sc.segs = append(sc.segs, e.Segments()...)
		var staged int
		_, staged, err = sw.WriteSegments(sc.segs)
		if staged > 0 {
			copied += payload // one seal/staging pass touches every payload byte
		}
		for i := range sc.segs {
			sc.segs[i] = nil
		}
		sc.segs = sc.segs[:0]
		segPool.Put(sc)
	} else {
		bp := getBuf()
		buf := (*bp)[:0]
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(n)|0x80000000)
		buf = append(buf, hdr[:]...)
		for _, s := range e.Segments() {
			buf = append(buf, s...)
		}
		copied += payload // the flatten pass touches every payload byte
		_, err = w.Write(buf)
		*bp = buf
		putBuf(bp)
	}
	if err == nil {
		wire.recordsOut.Inc()
		wire.bytesOut.Add(uint64(n + 4))
	}
	if payload > 0 {
		stats.NoteWirePayload(payload)
		if b := e.BorrowedBytes(); b > 0 {
			stats.NoteWireBorrowed(b)
		}
	}
	if copied > 0 {
		stats.NoteWireCopied(copied)
	}
	stats.ObserveWireCopies(copied, payload)
	return err
}

// WriteRecord writes one record-marked message (RFC 1831 §10) to w.
// The entire message is sent as a single fragment with the last-
// fragment bit set. The combined header+payload is staged in a pooled
// buffer, so w must not retain the slice passed to Write.
func WriteRecord(w io.Writer, payload []byte) error {
	if len(payload) > 0x7fffffff {
		return errors.New("sunrpc: record too large")
	}
	bp := getBuf()
	buf := (*bp)[:0]
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload))|0x80000000)
	// Single write where possible keeps datagram-like transports whole.
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	*bp = buf
	putBuf(bp)
	if err == nil {
		wire.recordsOut.Inc()
		wire.bytesOut.Add(uint64(len(payload) + 4))
	}
	return err
}

// MaxRecord bounds the size of a reassembled record.
const MaxRecord = 64 << 20

// ReadRecord reads one record-marked message, reassembling fragments.
// The returned slice is caller-owned: exactly one allocation on the
// common single-fragment path, sized to the record. (The 4-byte header
// is read through a pooled buffer because a stack array passed to an
// io.Reader interface would escape.)
func ReadRecord(r io.Reader) ([]byte, error) {
	bp := getBuf()
	defer putBuf(bp)
	hdr := (*bp)[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	h := binary.BigEndian.Uint32(hdr)
	n := int(h & 0x7fffffff)
	if n > MaxRecord {
		return nil, errors.New("sunrpc: record exceeds maximum size")
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, err
	}
	if h&0x80000000 != 0 { // last fragment: the common case
		wire.recordsIn.Inc()
		wire.bytesIn.Add(uint64(n + 4))
		return out, nil
	}
	frags := uint64(1)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return nil, err
		}
		h := binary.BigEndian.Uint32(hdr)
		n := int(h & 0x7fffffff)
		m := len(out)
		if n+m > MaxRecord {
			return nil, errors.New("sunrpc: record exceeds maximum size")
		}
		if cap(out)-m < n {
			grown := make([]byte, m+n)
			copy(grown, out)
			out = grown
		} else {
			out = out[:m+n]
		}
		if _, err := io.ReadFull(r, out[m:]); err != nil {
			return nil, err
		}
		frags++
		if h&0x80000000 != 0 {
			wire.recordsIn.Inc()
			wire.bytesIn.Add(uint64(len(out)) + 4*frags)
			return out, nil
		}
	}
}

// Client is an asynchronous RPC client. Multiple goroutines may issue
// calls concurrently over the same transport; replies are matched to
// calls by xid. A Client created with NewPeer additionally dispatches
// incoming calls to a Server, making the connection a full duplex RPC
// peer — this is how the SFS server issues cache-invalidation
// callbacks to clients over the same secure channel (paper §3.3).
type Client struct {
	mu      sync.Mutex
	conn    io.ReadWriteCloser
	nextXID uint32
	pending map[uint32]chan record
	// traces maps in-flight xids to their stage clocks (nil until
	// EnableTrace). All cross-goroutine clock access — registration
	// after the call record is written, the read loop's arrival stamp,
	// Finish's claim — happens under mu, which is what makes a clock
	// single-owner at every instant.
	traces map[uint32]*stats.StageClock
	tracer atomic.Pointer[clientTracer]
	err    error
	closed bool
	wmu    sync.Mutex    // serializes writes
	srv    *Server       // nil for a pure client
	sem    chan struct{} // bounds concurrent incoming-call dispatch
	done   chan struct{}
}

// clientTracer is a client's tracing sinks, installed by EnableTrace.
type clientTracer struct {
	ring   *stats.TraceRing
	stages *stats.StageSet
}

// EnableTrace switches on client-side span recording with a ring of
// the given capacity, returning the ring (for snapshots and the slow
// log) and the per-stage histogram set. The steady-state cost while
// installed is one atomic pointer load per call.
func (c *Client) EnableTrace(spans int) (*stats.TraceRing, *stats.StageSet) {
	t := &clientTracer{ring: stats.NewTraceRing(spans), stages: new(stats.StageSet)}
	t.ring.SetEnabled(true)
	c.tracer.Store(t)
	return t.ring, t.stages
}

// NewClient starts a client on conn and begins reading replies.
func NewClient(conn io.ReadWriteCloser) *Client { return NewPeer(conn, nil) }

// NewPeer starts a duplex peer on conn: replies are matched to local
// calls, and incoming calls (if srv is non-nil) are dispatched to srv
// with replies sent back over the same connection. Incoming calls run
// concurrently, bounded by the server's worker limit, and replies go
// out in completion order: XIDs disambiguate.
func NewPeer(conn io.ReadWriteCloser, srv *Server) *Client {
	c := &Client{
		conn:    conn,
		nextXID: 1,
		pending: make(map[uint32]chan record),
		srv:     srv,
		done:    make(chan struct{}),
	}
	if srv != nil {
		c.sem = make(chan struct{}, srv.maxWorkers())
	}
	go c.readLoop()
	return c
}

// Done is closed when the connection fails or is closed.
func (c *Client) Done() <-chan struct{} { return c.done }

func (c *Client) readLoop() {
	ot, _ := c.conn.(OpenTimer)
	for {
		// When any trace ring in the process is on, bracket the record
		// read with the channel's open-work accumulator: the delta is
		// this record's decrypt+verify cost, with the idle wait for
		// bytes excluded. Off, this is one atomic load per record.
		var open0 int64
		traced := stats.StageTimingOn()
		if traced && ot != nil {
			open0 = ot.OpenWorkNS()
		}
		rec, err := ReadRecord(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		var tRead time.Time
		var openNS int64
		if traced {
			tRead = time.Now()
			if ot != nil {
				openNS = ot.OpenWorkNS() - open0
			}
		}
		if len(rec) < 8 {
			continue
		}
		if binary.BigEndian.Uint32(rec[4:]) == msgCall {
			if c.srv != nil {
				c.srv.met.Load().InFlight.Inc()
				c.sem <- struct{}{} // bound outstanding dispatches
				go c.serveCall(rec, tRead, openNS)
			}
			continue
		}
		xid := binary.BigEndian.Uint32(rec)
		c.mu.Lock()
		ch, ok := c.pending[xid]
		if ok {
			delete(c.pending, xid)
		}
		if clk := c.traces[xid]; clk != nil {
			clk.MarkArrive(openNS)
		}
		c.mu.Unlock()
		if ok {
			ch <- rec
		}
	}
}

func (c *Client) serveCall(rec record, tRead time.Time, openNS int64) {
	met := c.srv.met.Load()
	met.Workers.Inc()
	defer func() { met.Workers.Dec(); met.InFlight.Dec(); <-c.sem }()
	var clk *stats.StageClock
	if !tRead.IsZero() && met.Trace.Enabled() {
		clk = serverClock(tRead, openNS)
		clk.End(stats.StageQueue, tRead) // worker picked the call up now
	}
	e := xdr.GetEncoder()
	defer xdr.PutEncoder(e)
	ok, err := c.srv.dispatch(rec, e, clk)
	if err != nil || !ok {
		return
	}
	c.wmu.Lock()
	err = writeReplyTraced(c.conn, e, clk)
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
		return
	}
	if clk != nil {
		sp := clk.FinishServer()
		met.Stages.Record(sp)
		met.Trace.Record(*sp)
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
	for xid, ch := range c.pending {
		close(ch)
		delete(c.pending, xid)
	}
	c.traces = nil
}

// Close tears down the transport and fails all pending calls.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.fail(ErrClosed)
	return err
}

// Call performs a synchronous RPC: it marshals args, sends the call
// with the given credentials, waits for the matching reply, and
// unmarshals the result into res (which may be nil for void results).
func (c *Client) Call(prog, vers, proc uint32, cred OpaqueAuth, args, res interface{}) error {
	ch, err := c.Start(prog, vers, proc, cred, args)
	if err != nil {
		return err
	}
	return c.Finish(ch, res)
}

// Start issues an asynchronous call and returns a channel on which the
// raw reply record will arrive. Use Finish to decode it. This is the
// mechanism by which the client overlaps many outstanding NFS RPCs.
func (c *Client) Start(prog, vers, proc uint32, cred OpaqueAuth, args interface{}) (<-chan record, error) {
	var clk *stats.StageClock
	if tr := c.tracer.Load(); tr != nil && tr.ring.Enabled() {
		clk = stats.NewStageClock()
		clk.Span.Prog, clk.Span.Vers, clk.Span.Proc = prog, vers, proc
		clk.Span.Principal = principalOf(cred)
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	xid := c.nextXID
	c.nextXID++
	ch := make(chan record, 1)
	c.pending[xid] = ch
	c.mu.Unlock()
	if clk != nil {
		clk.Span.XID = xid
	}

	e := xdr.GetEncoder()
	defer xdr.PutEncoder(e)
	// Gather mode borrows payload-class args (write-behind chunks);
	// they stay immutable until WriteRecordEncoder returns below, which
	// is all the ownership rule requires.
	e.SetGather(GatherEnabled())
	tEnc := clk.Now()
	e.PutUint32(xid)
	e.PutUint32(msgCall)
	if err := e.Encode(callHeader{
		RPCVers: RPCVersion,
		Prog:    prog,
		Vers:    vers,
		Proc:    proc,
		Cred:    cred,
		Verf:    NoAuth(),
	}); err != nil {
		c.cancel(xid)
		return nil, err
	}
	if args != nil {
		if err := e.Encode(args); err != nil {
			c.cancel(xid)
			return nil, err
		}
	}
	clk.End(stats.StageCliEncode, tEnc)
	var st SealTimer
	if clk != nil {
		st, _ = c.conn.(SealTimer)
	}
	c.wmu.Lock()
	var seal0 int64
	if st != nil {
		seal0 = st.SealWorkNS()
	}
	tW := clk.Now()
	err := WriteRecordEncoder(c.conn, e)
	var tDone time.Time
	var writeNS, sealNS int64
	if clk != nil {
		tDone = time.Now()
		writeNS = int64(tDone.Sub(tW))
		if st != nil {
			sealNS = st.SealWorkNS() - seal0
		}
	}
	c.wmu.Unlock()
	if err != nil {
		c.cancel(xid)
		return nil, err
	}
	if clk != nil {
		// Register the clock only now, under mu: the read loop stamps
		// arrival under the same lock, so from here on the clock is
		// handed between goroutines with the mutex providing order.
		c.mu.Lock()
		clk.Add(stats.StageCliSeal, sealNS)
		clk.Add(stats.StageCliWrite, writeNS-sealNS)
		clk.MarkWriteAt(tDone)
		clk.Span.Bytes += uint64(e.Len()) + 4
		if c.traces == nil {
			c.traces = make(map[uint32]*stats.StageClock)
		}
		c.traces[xid] = clk
		c.mu.Unlock()
	}
	return ch, nil
}

func (c *Client) cancel(xid uint32) {
	c.mu.Lock()
	delete(c.pending, xid)
	delete(c.traces, xid)
	c.mu.Unlock()
}

// Finish waits for the reply started by Start and decodes it into res.
func (c *Client) Finish(ch <-chan record, res interface{}) error {
	rec, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	clk := c.takeTrace(rec)
	if clk == nil {
		return decodeReply(rec, res)
	}
	t0 := time.Now()
	err := decodeReply(rec, res)
	sp := clk.FinishClient(int64(time.Since(t0)))
	sp.Err = sp.Err || err != nil
	sp.Bytes += uint64(len(rec)) + 4
	if tr := c.tracer.Load(); tr != nil {
		tr.stages.Record(sp)
		tr.ring.Record(*sp)
	}
	return err
}

// takeTrace claims the stage clock registered for rec's xid, if any.
// One atomic load while tracing was never enabled.
func (c *Client) takeTrace(rec record) *stats.StageClock {
	if c.tracer.Load() == nil || len(rec) < 4 {
		return nil
	}
	xid := binary.BigEndian.Uint32(rec)
	c.mu.Lock()
	clk := c.traces[xid]
	delete(c.traces, xid)
	c.mu.Unlock()
	return clk
}

func decodeReply(rec record, res interface{}) error {
	d := xdr.NewDecoder(rec)
	// Reply records are freshly allocated by ReadRecord and never
	// reused, so decoded payload fields (READ data) may alias them for
	// as long as the caller likes — including the data cache retaining
	// them as block contents.
	d.SetBorrow(GatherEnabled())
	if _, err := d.Uint32(); err != nil { // xid
		return err
	}
	mtype, err := d.Uint32()
	if err != nil {
		return err
	}
	if mtype != msgReply {
		return fmt.Errorf("sunrpc: unexpected message type %d", mtype)
	}
	stat, err := d.Uint32()
	if err != nil {
		return err
	}
	if stat == replyDenied {
		return ErrAuth
	}
	if stat != replyAccepted {
		return fmt.Errorf("sunrpc: bad reply status %d", stat)
	}
	var verf OpaqueAuth
	if err := d.Decode(&verf); err != nil {
		return err
	}
	astat, err := d.Uint32()
	if err != nil {
		return err
	}
	switch astat {
	case acceptSuccess:
	case acceptProgUnavail:
		return ErrProgUnavail
	case acceptProgMismatch:
		return ErrProgMismatch
	case acceptProcUnavail:
		return ErrProcUnavail
	case acceptGarbageArgs:
		return ErrGarbageArgs
	default:
		return ErrSystemErr
	}
	if res == nil {
		return nil
	}
	derr := d.Decode(res)
	if n := d.CopiedBytes(); n > 0 {
		stats.NoteWireCopied(n)
	}
	if n := d.BorrowedBytes(); n > 0 {
		stats.NoteWireBorrowed(n)
	}
	return derr
}

// Handler processes one procedure call. args is the undecoded argument
// body; the handler returns the reply body value (marshaled by the
// server) or an error mapped to an RPC-level failure.
type Handler func(proc uint32, cred OpaqueAuth, args *xdr.Decoder) (interface{}, error)

// progVers identifies a registered program.
type progVers struct{ prog, vers uint32 }

// DefaultWorkers is the per-connection bound on concurrently
// dispatched calls when SetWorkers has not been called. It mirrors the
// paper's asynchronous RPC libraries: enough outstanding requests to
// keep the disk and wire busy, without unbounded goroutine growth.
const DefaultWorkers = 16

// Server dispatches RPC calls on accepted transports.
type Server struct {
	mu       sync.RWMutex
	handlers map[progVers]Handler
	workers  int  // 0 → DefaultWorkers; 1 → serial
	inOrder  bool // replies in call order instead of completion order
	met      atomic.Pointer[Metrics]
}

// NewServer returns an empty server with its own metrics block.
func NewServer() *Server {
	s := &Server{handlers: make(map[progVers]Handler)}
	s.met.Store(NewMetrics())
	return s
}

// Metrics returns the server's metrics block.
func (s *Server) Metrics() *Metrics { return s.met.Load() }

// SetMetrics replaces the server's metrics block, typically to share
// one block across the per-connection Servers of a daemon so the
// daemon's counters aggregate every session.
func (s *Server) SetMetrics(m *Metrics) {
	if m != nil {
		s.met.Store(m)
	}
}

// Register installs h for (prog, vers), replacing any previous handler.
func (s *Server) Register(prog, vers uint32, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[progVers{prog, vers}] = h
}

// SetWorkers bounds the number of calls dispatched concurrently per
// connection. n <= 0 restores DefaultWorkers; n == 1 serves strictly
// serially. Affects connections served after the call.
func (s *Server) SetWorkers(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		n = 0
	}
	s.workers = n
}

// SetInOrder selects reply ordering for concurrent connections. By
// default replies leave in completion order — XIDs disambiguate, and
// RFC 1831 imposes no ordering. In-order mode restores call-order
// replies for peers that cannot match XIDs.
func (s *Server) SetInOrder(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inOrder = on
}

func (s *Server) maxWorkers() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.workers == 0 {
		return DefaultWorkers
	}
	return s.workers
}

func (s *Server) replyInOrder() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inOrder
}

// ServeConn handles calls on conn until it fails, then closes it.
// Up to SetWorkers calls are dispatched concurrently; one serialized
// writer emits replies, out of order by default (see SetInOrder).
func (s *Server) ServeConn(conn io.ReadWriteCloser) error {
	defer conn.Close()
	n := s.maxWorkers()
	if n <= 1 {
		return s.serveSerial(conn)
	}

	var (
		wmu     sync.Mutex // serializes reply writes
		wg      sync.WaitGroup
		failMu  sync.Mutex
		srvErr  error
		inOrder = s.replyInOrder()
	)
	fail := func(err error) {
		failMu.Lock()
		if srvErr == nil {
			srvErr = err
			conn.Close() // unblock the reader and any in-flight writes
		}
		failMu.Unlock()
	}
	failed := func() error {
		failMu.Lock()
		defer failMu.Unlock()
		return srvErr
	}

	// In-order mode: the reader enqueues one slot per call; a single
	// writer goroutine drains slots in call order, so a slow early
	// call holds back later replies (the pre-refactor semantics).
	var slots chan chan *xdr.Encoder
	writerDone := make(chan struct{})
	if inOrder {
		slots = make(chan chan *xdr.Encoder, 4*n)
		go func() {
			defer close(writerDone)
			for slot := range slots {
				e := <-slot
				if e == nil {
					continue
				}
				if err := WriteRecordEncoder(conn, e); err != nil {
					fail(err)
				}
				xdr.PutEncoder(e)
			}
		}()
	} else {
		close(writerDone)
	}

	sem := make(chan struct{}, n)
	met := s.met.Load()
	ot, _ := conn.(OpenTimer)
	var readErr error
	for {
		// Stage tracing (out-of-order mode only — the in-order writer
		// goroutine cannot attribute reply writes to a call): bracket
		// the record read with the channel's open-work accumulator.
		var open0 int64
		traced := !inOrder && met.Trace.Enabled()
		if traced && ot != nil {
			open0 = ot.OpenWorkNS()
		}
		rec, err := ReadRecord(conn)
		if err != nil {
			readErr = err
			break
		}
		var tRead time.Time
		var openNS int64
		if traced {
			tRead = time.Now()
			if ot != nil {
				openNS = ot.OpenWorkNS() - open0
			}
		}
		var slot chan *xdr.Encoder
		if inOrder {
			slot = make(chan *xdr.Encoder, 1)
			slots <- slot
		}
		met.InFlight.Inc() // read off the wire, not yet replied
		sem <- struct{}{}
		wg.Add(1)
		go func(rec []byte, slot chan *xdr.Encoder, tRead time.Time, openNS int64) {
			met.Workers.Inc()
			defer func() { met.Workers.Dec(); met.InFlight.Dec(); <-sem; wg.Done() }()
			var clk *stats.StageClock
			if !tRead.IsZero() {
				clk = serverClock(tRead, openNS)
				clk.End(stats.StageQueue, tRead) // queue wait ends here
			}
			e := xdr.GetEncoder()
			ok, err := s.dispatch(rec, e, clk)
			if err != nil {
				fail(err)
				ok = false
			}
			if !ok {
				xdr.PutEncoder(e)
				if slot != nil {
					slot <- nil
				}
				return
			}
			if slot != nil {
				slot <- e // writer goroutine returns e to the pool
				return
			}
			wmu.Lock()
			werr := writeReplyTraced(conn, e, clk)
			wmu.Unlock()
			xdr.PutEncoder(e)
			if werr != nil {
				fail(werr)
				return
			}
			if clk != nil {
				sp := clk.FinishServer()
				met.Stages.Record(sp)
				met.Trace.Record(*sp)
			}
		}(rec, slot, tRead, openNS)
	}
	wg.Wait()
	if inOrder {
		close(slots)
	}
	<-writerDone
	if err := failed(); err != nil {
		return err
	}
	if errors.Is(readErr, io.EOF) {
		return nil
	}
	return readErr
}

// serveSerial is the single-worker path: one call at a time, one
// reusable encoder for the whole connection.
func (s *Server) serveSerial(conn io.ReadWriteCloser) error {
	e := xdr.GetEncoder()
	defer xdr.PutEncoder(e)
	met := s.met.Load()
	ot, _ := conn.(OpenTimer)
	for {
		var open0 int64
		traced := met.Trace.Enabled()
		if traced && ot != nil {
			open0 = ot.OpenWorkNS()
		}
		rec, err := ReadRecord(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		var clk *stats.StageClock
		if traced {
			var openNS int64
			if ot != nil {
				openNS = ot.OpenWorkNS() - open0
			}
			clk = serverClock(time.Now(), openNS) // serial: no queue wait
		}
		met.InFlight.Inc()
		met.Workers.Inc()
		ok, err := s.dispatch(rec, e, clk)
		met.Workers.Dec()
		if err != nil {
			met.InFlight.Dec()
			return err
		}
		if ok {
			err = writeReplyTraced(conn, e, clk)
		}
		met.InFlight.Dec()
		if err != nil {
			return err
		}
		if ok && clk != nil {
			sp := clk.FinishServer()
			met.Stages.Record(sp)
			met.Trace.Record(*sp)
		}
	}
}

// dispatch decodes one call record and encodes the reply into e
// (resetting it first). It reports whether e holds a reply to send;
// unparseable records are dropped. e never escapes: the caller owns it.
// clk, when non-nil, is the call's stage clock: it rides to the NFS
// handler through the decoder's context slot, the handler's vfs/fsync
// charges are subtracted out of the dispatch stage, and the span is
// recorded by the caller after the reply write. With a nil clk a
// duration-only span is recorded here, as before stage tracing.
func (s *Server) dispatch(rec []byte, e *xdr.Encoder, clk *stats.StageClock) (bool, error) {
	e.Reset()
	// Reply payloads (READ data) are borrowed into the record when the
	// gather path is on; vfs.Read hands out a fresh per-call snapshot,
	// so the borrow is immutable by construction (DESIGN.md §12).
	e.SetGather(GatherEnabled())
	m := s.met.Load()
	d := xdr.NewDecoder(rec)
	xid, err := d.Uint32()
	if err != nil {
		m.Dropped.Inc()
		return false, nil //nolint:nilerr // unparseable record: drop
	}
	mtype, err := d.Uint32()
	if err != nil || mtype != msgCall {
		m.Dropped.Inc()
		return false, nil
	}
	var hdr callHeader
	if err := d.Decode(&hdr); err != nil {
		m.Dropped.Inc()
		return false, nil //nolint:nilerr
	}
	m.Calls.Inc()
	if clk != nil {
		clk.Span.XID, clk.Span.Prog, clk.Span.Vers, clk.Span.Proc = xid, hdr.Prog, hdr.Vers, hdr.Proc
		clk.Span.Principal = principalOf(hdr.Cred)
		clk.Span.Bytes += uint64(len(rec)) + 4
		d.SetCtx(clk)
	}
	start := time.Now()
	ok, success, err := s.dispatchCall(xid, hdr, d, e)
	dur := time.Since(start)
	m.Latency.ObserveDuration(dur)
	m.prog(progVers{hdr.Prog, hdr.Vers}).observe(hdr.Proc, !success)
	switch {
	case err != nil:
		m.Errors.Inc()
	case ok:
		m.Replies.Inc()
	}
	if clk != nil {
		clk.Span.Err = !success
		// The handler's vfs and fsync charges are nested inside the
		// dispatch interval; subtract them so the stages partition it.
		clk.Add(stats.StageDispatch,
			int64(dur)-clk.Get(stats.StageVFS)-clk.Get(stats.StageFsync))
	} else {
		m.Trace.Record(stats.Span{
			XID: xid, Prog: hdr.Prog, Vers: hdr.Vers, Proc: hdr.Proc,
			DurUS: dur.Microseconds(), Err: !success,
		})
	}
	return ok, err
}

// dispatchCall routes one decoded call header. success reports
// whether the reply (if any) carries accept status SUCCESS — the
// per-procedure error counters' notion of failure.
func (s *Server) dispatchCall(xid uint32, hdr callHeader, d *xdr.Decoder, e *xdr.Encoder) (ok, success bool, err error) {
	if hdr.RPCVers != RPCVersion {
		ok, err = replyInto(e, xid, acceptSystemErr, nil)
		return ok, false, err
	}
	s.mu.RLock()
	h, found := s.handlers[progVers{hdr.Prog, hdr.Vers}]
	s.mu.RUnlock()
	if !found {
		s.mu.RLock()
		progKnown := false
		for pv := range s.handlers {
			if pv.prog == hdr.Prog {
				progKnown = true
				break
			}
		}
		s.mu.RUnlock()
		if progKnown {
			ok, err = replyInto(e, xid, acceptProgMismatch, nil)
		} else {
			ok, err = replyInto(e, xid, acceptProgUnavail, nil)
		}
		return ok, false, err
	}
	res, herr := h(hdr.Proc, hdr.Cred, d)
	if herr != nil {
		switch {
		case errors.Is(herr, ErrProcUnavail):
			ok, err = replyInto(e, xid, acceptProcUnavail, nil)
		case errors.Is(herr, ErrGarbageArgs):
			ok, err = replyInto(e, xid, acceptGarbageArgs, nil)
		default:
			ok, err = replyInto(e, xid, acceptSystemErr, nil)
		}
		return ok, false, err
	}
	ok, err = replyInto(e, xid, acceptSuccess, res)
	return ok, err == nil, err
}

// replyInto encodes an accepted reply message into e.
func replyInto(e *xdr.Encoder, xid, astat uint32, res interface{}) (bool, error) {
	e.Reset()
	e.PutUint32(xid)
	e.PutUint32(msgReply)
	e.PutUint32(replyAccepted)
	if err := e.Encode(NoAuth()); err != nil {
		return false, err
	}
	e.PutUint32(astat)
	if astat == acceptSuccess && res != nil {
		if err := e.Encode(res); err != nil {
			return false, err
		}
	}
	if astat == acceptProgMismatch {
		e.PutUint32(0) // low
		e.PutUint32(0) // high
	}
	return true, nil
}
