package sunrpc

import (
	"bytes"
	"net"
	"testing"

	"repro/internal/xdr"
)

// sink is an io.Writer that discards while defeating dead-code
// elimination of the framed bytes.
type sink struct{ n int }

func (s *sink) Write(p []byte) (int, error) { s.n += len(p); return len(p), nil }

// BenchmarkWriteRecord measures framing one NFS-READ-sized payload —
// the per-message allocation cost of the record-marking layer.
func BenchmarkWriteRecord(b *testing.B) {
	payload := make([]byte, 8192)
	w := &sink{}
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteRecord(w, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadRecord measures reassembling one framed record. The
// returned record is caller-owned, so exactly one allocation per
// record is inherent; the baseline paid two plus a copy.
func BenchmarkReadRecord(b *testing.B) {
	payload := make([]byte, 8192)
	var framed bytes.Buffer
	if err := WriteRecord(&framed, payload); err != nil {
		b.Fatal(err)
	}
	raw := framed.Bytes()
	r := bytes.NewReader(raw)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(raw)
		rec, err := ReadRecord(r)
		if err != nil {
			b.Fatal(err)
		}
		if len(rec) != len(payload) {
			b.Fatalf("got %d bytes", len(rec))
		}
	}
}

// BenchmarkRoundTrip measures a full in-process call through the
// client and server: encode, frame, dispatch, reply, decode.
func BenchmarkRoundTrip(b *testing.B) {
	srv := NewServer()
	srv.Register(7, 1, func(proc uint32, cred OpaqueAuth, args *xdr.Decoder) (interface{}, error) {
		var in []byte
		if err := args.Decode(&in); err != nil {
			return nil, ErrGarbageArgs
		}
		return in, nil
	})
	c1, c2 := net.Pipe()
	go srv.ServeConn(c2) //nolint:errcheck
	cl := NewClient(c1)
	defer cl.Close()
	payload := make([]byte, 8192)
	var res []byte
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Call(7, 1, 1, NoAuth(), payload, &res); err != nil {
			b.Fatal(err)
		}
	}
}
