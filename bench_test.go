package repro

// One testing.B benchmark per table/figure of the paper's evaluation
// (§4). Each benchmark builds the stack it measures — substrate file
// system, shaped loopback transport, full protocol machinery — and
// runs the paper's workload once per iteration. Figures with several
// phases report per-phase wall time through b.ReportMetric, so
// `go test -bench .` regenerates every row the paper prints.
//
// cmd/sfsbench renders the same experiments as side-by-side tables
// with the paper's reference values.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
)

func buildStack(b *testing.B, kind bench.StackKind) bench.Stack {
	b.Helper()
	st, err := bench.Build(kind)
	if err != nil {
		b.Fatalf("Build(%s): %v", kind, err)
	}
	b.Cleanup(st.Close)
	return st
}

// --- Figure 5: latency of an operation that is always a round trip ---

func benchLatency(b *testing.B, kind bench.StackKind) {
	st := buildStack(b, kind)
	if err := st.WriteFile("probe", []byte("x")); err != nil {
		b.Fatal(err)
	}
	if err := st.ChownFail("probe"); err != nil { // warm handle
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.ChownFail("probe"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5LatencyNFSUDP(b *testing.B)   { benchLatency(b, bench.KindNFSUDP) }
func BenchmarkFig5LatencyNFSTCP(b *testing.B)   { benchLatency(b, bench.KindNFSTCP) }
func BenchmarkFig5LatencySFS(b *testing.B)      { benchLatency(b, bench.KindSFS) }
func BenchmarkFig5LatencySFSNoEnc(b *testing.B) { benchLatency(b, bench.KindSFSNoEnc) }

// --- Figure 5: streaming throughput of a sparse sequential read ---

func benchThroughput(b *testing.B, kind bench.StackKind) {
	const size = 4 << 20
	st := buildStack(b, kind)
	if err := st.WriteFile("sparse", nil); err != nil {
		b.Fatal(err)
	}
	if err := st.Truncate("sparse", size); err != nil {
		b.Fatal(err)
	}
	f, err := st.Open("sparse")
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 8192)
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < size; off += len(buf) {
			if _, err := f.ReadAt(buf, uint64(off)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig5ThroughputNFSUDP(b *testing.B)   { benchThroughput(b, bench.KindNFSUDP) }
func BenchmarkFig5ThroughputNFSTCP(b *testing.B)   { benchThroughput(b, bench.KindNFSTCP) }
func BenchmarkFig5ThroughputSFS(b *testing.B)      { benchThroughput(b, bench.KindSFS) }
func BenchmarkFig5ThroughputSFSNoEnc(b *testing.B) { benchThroughput(b, bench.KindSFSNoEnc) }

// --- Figure 6: the Modified Andrew Benchmark ---

func benchMAB(b *testing.B, kind bench.StackKind) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := buildStack(b, kind) // fresh tree per iteration
		b.StartTimer()
		results, err := bench.MABPhases(st)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		for _, r := range results {
			b.ReportMetric(r.Elapsed.Seconds(), fmt.Sprintf("s-%s", phaseKey(r.Phase)))
		}
		st.Close()
		b.StartTimer()
	}
}

func phaseKey(phase string) string {
	out := make([]rune, 0, len(phase))
	for _, r := range phase {
		if r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

func BenchmarkFig6MABLocal(b *testing.B)      { benchMAB(b, bench.KindLocal) }
func BenchmarkFig6MABNFSUDP(b *testing.B)     { benchMAB(b, bench.KindNFSUDP) }
func BenchmarkFig6MABNFSTCP(b *testing.B)     { benchMAB(b, bench.KindNFSTCP) }
func BenchmarkFig6MABSFS(b *testing.B)        { benchMAB(b, bench.KindSFS) }
func BenchmarkFig6MABSFSNoCache(b *testing.B) { benchMAB(b, bench.KindSFSNoCache) }

// --- Figure 7: the GENERIC kernel compile (scaled 1/70) ---

func benchCompile(b *testing.B, kind bench.StackKind) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := buildStack(b, kind)
		b.StartTimer()
		if _, err := bench.CompileWorkload(st, 20, 55_000_000); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		st.Close()
		b.StartTimer()
	}
}

func BenchmarkFig7CompileLocal(b *testing.B)    { benchCompile(b, bench.KindLocal) }
func BenchmarkFig7CompileNFSUDP(b *testing.B)   { benchCompile(b, bench.KindNFSUDP) }
func BenchmarkFig7CompileNFSTCP(b *testing.B)   { benchCompile(b, bench.KindNFSTCP) }
func BenchmarkFig7CompileSFS(b *testing.B)      { benchCompile(b, bench.KindSFS) }
func BenchmarkFig7CompileSFSNoEnc(b *testing.B) { benchCompile(b, bench.KindSFSNoEnc) }

// --- Figure 8: Sprite LFS small-file benchmark (scaled to 200 files) ---

func benchSpriteSmall(b *testing.B, kind bench.StackKind) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := buildStack(b, kind)
		b.StartTimer()
		results, err := bench.SpriteSmall(st, 200, 1024)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		for _, r := range results {
			b.ReportMetric(r.Elapsed.Seconds(), fmt.Sprintf("s-%s", phaseKey(r.Phase)))
		}
		st.Close()
		b.StartTimer()
	}
}

func BenchmarkFig8SmallLocal(b *testing.B)      { benchSpriteSmall(b, bench.KindLocal) }
func BenchmarkFig8SmallNFSUDP(b *testing.B)     { benchSpriteSmall(b, bench.KindNFSUDP) }
func BenchmarkFig8SmallNFSTCP(b *testing.B)     { benchSpriteSmall(b, bench.KindNFSTCP) }
func BenchmarkFig8SmallSFS(b *testing.B)        { benchSpriteSmall(b, bench.KindSFS) }
func BenchmarkFig8SmallSFSNoCache(b *testing.B) { benchSpriteSmall(b, bench.KindSFSNoCache) }

// --- Figure 9: Sprite LFS large-file benchmark (4 MB file) ---

func benchSpriteLarge(b *testing.B, kind bench.StackKind) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := buildStack(b, kind)
		b.StartTimer()
		results, err := bench.SpriteLarge(st, 4<<20)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		for _, r := range results {
			b.ReportMetric(r.Elapsed.Seconds(), fmt.Sprintf("s-%s", phaseKey(r.Phase)))
		}
		st.Close()
		b.StartTimer()
	}
}

func BenchmarkFig9LargeLocal(b *testing.B)    { benchSpriteLarge(b, bench.KindLocal) }
func BenchmarkFig9LargeNFSUDP(b *testing.B)   { benchSpriteLarge(b, bench.KindNFSUDP) }
func BenchmarkFig9LargeNFSTCP(b *testing.B)   { benchSpriteLarge(b, bench.KindNFSTCP) }
func BenchmarkFig9LargeSFS(b *testing.B)      { benchSpriteLarge(b, bench.KindSFS) }
func BenchmarkFig9LargeSFSNoEnc(b *testing.B) { benchSpriteLarge(b, bench.KindSFSNoEnc) }

// --- Scalability: concurrent clients against one server ---

func benchScalability(b *testing.B, clients int) {
	for i := 0; i < b.N; i++ {
		p, _, err := bench.ScalabilityPoint(clients, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p.MBps(), "MB/s")
		b.ReportMetric(p.RPCps(), "RPC/s")
	}
}

func BenchmarkScalability1Client(b *testing.B)  { benchScalability(b, 1) }
func BenchmarkScalability4Clients(b *testing.B) { benchScalability(b, 4) }
func BenchmarkScalability8Clients(b *testing.B) { benchScalability(b, 8) }

// --- Warm read: the client data cache figure ---

// BenchmarkWarmReadFigure regenerates the warm-read figure (quick
// sizes) and fails if the warm re-read crossed the wire — the
// regression CI's bench-smoke step exists to catch.
func BenchmarkWarmReadFigure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.FigWarmRead(bench.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		row, ok := fig.RowFor("SFS (data cache)", "warm re-read")
		if !ok {
			b.Fatal("figure lacks the warm re-read row")
		}
		if row.RPCs != 0 {
			b.Fatalf("warm re-read issued %d RPCs, want 0", row.RPCs)
		}
		b.ReportMetric(row.Value, "warm-MB/s")
	}
}
