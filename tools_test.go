package repro

// End-to-end test of the command-line tools: builds the binaries and
// drives a full deployment through their public interfaces — the way
// a downstream user would.
//
// Tier-1 practice: the concurrent RPC pipeline makes the race
// detector part of the bar. Alongside `go test ./...`, run
//
//	go test -race ./internal/sunrpc ./internal/secchan ./internal/xdr ./internal/nfs ./internal/client ./internal/stats ./internal/vfs ./internal/storage/... ./internal/server
//
// before merging — those packages share connections between the
// reader loop, the dispatch worker pool, and readahead/write-behind
// futures, and their stress tests are written to surface cross-talk
// only a race build catches: client.TestConcurrentRPCPipelineOneChannel
// for reads, client.TestConcurrentWriteSyncCloseOneFile (WriteAt, Sync,
// and Close racing on one File) and client.TestMixedReadWriteOneChannel
// (both pipelines draining each other on one channel) for writes.
// internal/stats rides along because every layer above hammers its
// counters concurrently; stats.TestConcurrentIncrementAndSnapshot
// races increments against snapshots directly. The sharded server hot
// path added its own targets: vfs.TestStressNamespaceVsData
// (Create/Rename/Remove interleaved with Read/Write/Commit across the
// striped node table, including the cross-directory rename pattern
// that deadlocks under naive lock orders), vfs.TestStressRestartVsWrite
// (boot-verifier rollover racing unstable writes), and
// nfs.TestConcurrentLeaseAttachDetachInvalidate plus
// nfs.TestStalledSessionDoesNotBlockWriters (striped lease table and
// the no-RPC-under-lock rule). The client data block cache adds
// nfs.TestDataCacheStressRace (concurrent readers, a local writer,
// and a remote writer whose callbacks invalidate mid-flight, under a
// tiny budget so eviction churns) and
// nfs.TestSingleFlightSharesColdRead (cold-read flight sharing). The
// durable storage layer adds wal.TestConcurrentAppendSync (group
// commit: appenders racing the leader/follower fsync protocol) and
// vfs.TestDiskRestartConcurrentWrites (crash-replay state swap racing
// in-flight writes). The zero-copy wire path adds internal/xdr (gather
// encoders borrow caller slices that dispatch workers seal) and
// secchan.TestConcurrentGatherWritesRace (mixed Write/WriteSegments
// traffic from many goroutines on one channel must keep the shared
// ARC4 key stream aligned). Session establishment (DESIGN.md §14)
// adds internal/server: server.TestHandshakeStorm races full key
// negotiations and ticket-chained resumptions from many clients
// through the negotiation pool, the admission counters, and the
// single-use resumption cache at once. Checkpointing and paging
// (DESIGN.md §15) add vfs.TestCheckpointConcurrentWrites (namespace
// mutators and stable writers racing a stream of checkpoints through
// the quiesce lock) and diskstore.TestCheckpointConcurrentReads
// (readers faulting cold pages while the image writer flushes and
// walks the extent index).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuffer collects a child process's output; os/exec writes from
// its own copier goroutine, so reads must synchronize.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.b.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.b.String()
}

// buildTools compiles the commands once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"sfskey", "sfssd", "sfscd", "sfsauthd", "sfsrodb", "sfsagent"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c, err := net.Dial("tcp", addr); err == nil {
			c.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("nothing listening on %s", addr)
}

func TestToolsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTools(t)
	work := t.TempDir()

	// 1. Generate server and user keys.
	srvKey := filepath.Join(work, "server.sfs")
	run(t, filepath.Join(bin, "sfskey"), "gen", "-o", srvKey, "-bits", "768")
	pathOut := run(t, filepath.Join(bin, "sfskey"), "path", "-k", srvKey, "-location", "files.example.com")
	selfPath := strings.TrimSpace(pathOut)
	if !strings.HasPrefix(selfPath, "/sfs/files.example.com:") {
		t.Fatalf("sfskey path printed %q", selfPath)
	}
	hostID := selfPath[strings.LastIndexByte(selfPath, ':')+1:]

	// 2. Seed content and start sfssd with one password user.
	seedDir := filepath.Join(work, "seed")
	if err := os.MkdirAll(filepath.Join(seedDir, "pub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(seedDir, "pub", "hello.txt"), []byte("tool-served content\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	addr := freePort(t)
	statsAddr := freePort(t)
	userKeyPath := filepath.Join(work, "alice.sfs")
	sd := exec.Command(filepath.Join(bin, "sfssd"),
		"-listen", addr,
		"-location", "files.example.com",
		"-keyfile", srvKey,
		"-seed", seedDir,
		"-stats", statsAddr,
		"-user", "alice:1000:correct horse:"+userKeyPath,
	)
	sdOut := &lockedBuffer{}
	sd.Stdout, sd.Stderr = sdOut, sdOut
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("sfssd output:\n%s", sdOut.String())
		}
	})
	if err := sd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sd.Process.Kill(); sd.Wait() }) //nolint:errcheck
	waitListening(t, addr)

	// 3. sfskey fetch: the SRP password flow downloads the
	// self-certifying pathname and the private key.
	fetched := filepath.Join(work, "fetched.sfs")
	fetchOut := run(t, filepath.Join(bin, "sfskey"), "fetch",
		"-server", addr, "-location", "files.example.com", "-hostid", hostID,
		"-user", "alice", "-password", "correct horse", "-o", fetched)
	if !strings.Contains(fetchOut, selfPath) {
		t.Fatalf("fetch did not return the self-certifying pathname:\n%s", fetchOut)
	}
	if _, err := os.Stat(fetched); err != nil {
		t.Fatalf("fetched key not saved: %v", err)
	}

	// 4. Drive sfscd interactively: read the served file through the
	// self-certifying pathname, write one back as alice. -v makes the
	// shell report wall time and RPC count after each command.
	cd := exec.Command(filepath.Join(bin, "sfscd"),
		"-server", "files.example.com="+addr,
		"-user", "alice", "-keyfile", fetched, "-v")
	stdin, err := cd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cd.Stderr = cd.Stdout
	if err := cd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cd.Process.Kill(); cd.Wait() }) //nolint:errcheck
	fmt.Fprintf(stdin, "cat %s/pub/hello.txt\n", selfPath)
	fmt.Fprintf(stdin, "pwd %s/pub\n", selfPath)
	fmt.Fprintln(stdin, "stats")
	fmt.Fprintln(stdin, "quit")
	out, _ := io.ReadAll(bufio.NewReader(stdout))
	if !strings.Contains(string(out), "tool-served content") {
		t.Fatalf("sfscd cat output:\n%s", out)
	}
	if !strings.Contains(string(out), selfPath) {
		t.Fatalf("sfscd pwd output:\n%s", out)
	}
	if !strings.Contains(string(out), " RPCs)") {
		t.Fatalf("sfscd -v did not report per-command RPC counts:\n%s", out)
	}
	if !strings.Contains(string(out), "readahead_hits") {
		t.Fatalf("sfscd stats command printed no pipeline counters:\n%s", out)
	}
	if !strings.Contains(string(out), "data_hits") {
		t.Fatalf("sfscd stats command printed no data cache counters:\n%s", out)
	}

	// 4b. The sfssd -stats endpoint serves one JSON document covering
	// every instrumented subsystem, with the traffic above recorded.
	resp, err := http.Get("http://" + statsAddr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"master", "nfs", "sunrpc", "secchan", "authserv"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("stats snapshot missing %q section (have %d sections)", key, len(snap))
		}
	}
	if !strings.Contains(string(snap["master"]), `"accepts"`) {
		t.Errorf("master section lacks connection counters: %s", snap["master"])
	}

	// 5. Read-only dialect: build a signed database, serve it from a
	// "replica" (no key file involved), fetch and verify.
	dbFile := filepath.Join(work, "fs.sfsro")
	run(t, filepath.Join(bin, "sfsrodb"), "build",
		"-seed", seedDir, "-location", "files.example.com", "-keyfile", srvKey,
		"-o", dbFile)
	roAddr := freePort(t)
	ro := exec.Command(filepath.Join(bin, "sfsrodb"), "serve", "-db", dbFile, "-listen", roAddr)
	roOut := &lockedBuffer{}
	ro.Stdout, ro.Stderr = roOut, roOut
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("sfsrodb serve output:\n%s", roOut.String())
		}
	})
	if err := ro.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ro.Process.Kill(); ro.Wait() }) //nolint:errcheck
	waitListening(t, roAddr)
	got := run(t, filepath.Join(bin, "sfsrodb"), "get",
		"-addr", roAddr, "-path", selfPath, "-file", "pub/hello.txt")
	if !strings.Contains(got, "tool-served content") {
		t.Fatalf("sfsrodb get returned %q", got)
	}
	// The replica logs one structured line per connection.
	logDeadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(roOut.String(), "accept peer=") {
		if time.Now().After(logDeadline) {
			t.Fatalf("sfsrodb serve never logged the accept:\n%s", roOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// 6. sfsauthd: manage a database offline and export the public
	// half.
	dbPath := filepath.Join(work, "users.db")
	run(t, filepath.Join(bin, "sfsauthd"), "init", "-db", dbPath)
	run(t, filepath.Join(bin, "sfsauthd"), "adduser",
		"-db", dbPath, "-selfpath", selfPath, "-user", "bob", "-uid", "1001",
		"-password", "pw", "-keyfile", filepath.Join(work, "bob.sfs"))
	listing := run(t, filepath.Join(bin, "sfsauthd"), "list", "-db", dbPath)
	if !strings.Contains(listing, "bob") || !strings.Contains(listing, "+srp") {
		t.Fatalf("sfsauthd list:\n%s", listing)
	}
	pubPath := filepath.Join(work, "public.db")
	run(t, filepath.Join(bin, "sfsauthd"), "export", "-db", dbPath, "-o", pubPath)
	pub, err := os.ReadFile(pubPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pub) == 0 {
		t.Fatal("empty public export")
	}
}

// TestDiskStoreRecoverySmoke is the CI crash-recovery gate: sfssd
// serves from the disk store, a client writes a file with the durable
// `put` (which ends in an acknowledged COMMIT), the server dies by
// real SIGKILL, and a second sfssd over the same directory must replay
// the WAL and serve the committed bytes back — zero acknowledged-COMMIT
// loss through an actual process kill.
func TestDiskStoreRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTools(t)
	work := t.TempDir()

	srvKey := filepath.Join(work, "server.sfs")
	run(t, filepath.Join(bin, "sfskey"), "gen", "-o", srvKey, "-bits", "768")
	selfPath := strings.TrimSpace(run(t, filepath.Join(bin, "sfskey"), "path",
		"-k", srvKey, "-location", "files.example.com"))
	storeDir := filepath.Join(work, "store")
	adminKey := filepath.Join(work, "admin.sfs")
	addr := freePort(t)

	// startServer boots sfssd over the same store directory; the admin
	// user (uid 0, so it may write at the root) reuses its key file
	// across boots.
	startServer := func() (*exec.Cmd, *lockedBuffer) {
		sd := exec.Command(filepath.Join(bin, "sfssd"),
			"-listen", addr,
			"-location", "files.example.com",
			"-keyfile", srvKey,
			"-store", "disk", "-dir", storeDir,
			"-user", "admin:0:pw:"+adminKey,
		)
		out := &lockedBuffer{}
		sd.Stdout, sd.Stderr = out, out
		if err := sd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			sd.Process.Kill() //nolint:errcheck
			sd.Wait()         //nolint:errcheck
			if t.Failed() {
				t.Logf("sfssd output:\n%s", out.String())
			}
		})
		waitListening(t, addr)
		return sd, out
	}

	// runClient pipes commands through one sfscd session and returns
	// everything it printed.
	runClient := func(script string) string {
		cd := exec.Command(filepath.Join(bin, "sfscd"),
			"-server", "files.example.com="+addr,
			"-user", "admin", "-keyfile", adminKey, "-quiet")
		cd.Stdin = strings.NewReader(script)
		out, err := cd.CombinedOutput()
		if err != nil {
			t.Fatalf("sfscd: %v\n%s", err, out)
		}
		return string(out)
	}

	sd, _ := startServer()
	const payload = "survived a real kill -9"
	runClient(fmt.Sprintf("put %s/crash.txt %s\nquit\n", selfPath, payload))

	// The COMMIT was acknowledged before the prompt returned; now the
	// server dies for real.
	if err := sd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	sd.Wait() //nolint:errcheck

	_, out2 := startServer()
	got := runClient(fmt.Sprintf("cat %s/crash.txt\nquit\n", selfPath))
	if !strings.Contains(got, payload) {
		t.Fatalf("acknowledged COMMIT lost across kill -9: cat printed\n%s", got)
	}
	// The reboot banner reports the replay that recovered it.
	if !strings.Contains(out2.String(), "disk store in") {
		t.Fatalf("second boot did not report the disk store:\n%s", out2.String())
	}
}

// TestDiskStoreMidCheckpointKillSmoke extends the recovery gate to the
// checkpointing path (DESIGN.md §15): sfssd runs with a tiny
// -checkpoint-bytes threshold so the background checkpointer fires
// repeatedly under a stream of durable puts, and the SIGKILL lands
// right after a put acknowledges — racing whatever checkpoint, WAL
// rotation, or image rename is in flight at that instant. The reboot
// must serve every acknowledged file byte-for-byte, from whichever
// image generation survived plus the journal tail. The deterministic
// mid-protocol stages (crash between image write, prev rename, and
// publish rename) are covered by diskstore's
// TestCheckpointAbortedMidProtocol; this smoke proves the same
// contract through real processes.
func TestDiskStoreMidCheckpointKillSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildTools(t)
	work := t.TempDir()

	srvKey := filepath.Join(work, "server.sfs")
	run(t, filepath.Join(bin, "sfskey"), "gen", "-o", srvKey, "-bits", "768")
	selfPath := strings.TrimSpace(run(t, filepath.Join(bin, "sfskey"), "path",
		"-k", srvKey, "-location", "files.example.com"))
	storeDir := filepath.Join(work, "store")
	adminKey := filepath.Join(work, "admin.sfs")
	addr := freePort(t)
	statsAddr := freePort(t)

	startServer := func() (*exec.Cmd, *lockedBuffer) {
		sd := exec.Command(filepath.Join(bin, "sfssd"),
			"-listen", addr,
			"-location", "files.example.com",
			"-keyfile", srvKey,
			"-store", "disk", "-dir", storeDir,
			"-checkpoint-bytes", "4096", // checkpoint after nearly every put
			"-stats", statsAddr,
			"-user", "admin:0:pw:"+adminKey,
		)
		out := &lockedBuffer{}
		sd.Stdout, sd.Stderr = out, out
		if err := sd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			sd.Process.Kill() //nolint:errcheck
			sd.Wait()         //nolint:errcheck
			if t.Failed() {
				t.Logf("sfssd output:\n%s", out.String())
			}
		})
		waitListening(t, addr)
		return sd, out
	}

	runClient := func(script string) string {
		cd := exec.Command(filepath.Join(bin, "sfscd"),
			"-server", "files.example.com="+addr,
			"-user", "admin", "-keyfile", adminKey, "-quiet")
		cd.Stdin = strings.NewReader(script)
		out, err := cd.CombinedOutput()
		if err != nil {
			t.Fatalf("sfscd: %v\n%s", err, out)
		}
		return string(out)
	}

	// checkpointCount polls the stats endpoint for the running
	// checkpoint counter.
	checkpointCount := func() uint64 {
		resp, err := http.Get("http://" + statsAddr + "/stats")
		if err != nil {
			return 0
		}
		defer resp.Body.Close()
		var doc struct {
			Storage struct {
				Checkpoint struct {
					Count uint64 `json:"count"`
				} `json:"checkpoint"`
			} `json:"storage"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			return 0
		}
		return doc.Storage.Checkpoint.Count
	}

	sd, _ := startServer()

	// Stream durable puts (each ends in an acknowledged COMMIT) until
	// the checkpointer has demonstrably fired at least twice — so the
	// kill lands with a rotated WAL and a published image behind it,
	// and likely another checkpoint in flight.
	payload := func(i int) string { return fmt.Sprintf("checkpointed payload %d survives kill -9", i) }
	var acked int
	deadline := time.Now().Add(30 * time.Second)
	for acked < 4 || checkpointCount() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("checkpointer never fired twice (count=%d after %d puts)", checkpointCount(), acked)
		}
		runClient(fmt.Sprintf("put %s/ck-%d.txt %s\nquit\n", selfPath, acked, payload(acked)))
		acked++
	}

	// Every put above was acknowledged; now die for real, mid whatever
	// the background checkpointer is doing.
	if err := sd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	sd.Wait() //nolint:errcheck

	_, out2 := startServer()
	for i := 0; i < acked; i++ {
		got := runClient(fmt.Sprintf("cat %s/ck-%d.txt\nquit\n", selfPath, i))
		if !strings.Contains(got, payload(i)) {
			t.Fatalf("acknowledged COMMIT %d lost across mid-checkpoint kill -9: cat printed\n%s", i, got)
		}
	}
	// The reboot banner reports the two recovery phases separately.
	if !strings.Contains(out2.String(), "recovery: checkpoint") {
		t.Fatalf("second boot did not report the recovery phase breakdown:\n%s", out2.String())
	}
}
