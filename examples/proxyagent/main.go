// Proxy agents (paper §2.5.1): "we hope to build a remote login
// utility similar to ssh that acts as a proxy SFS agent. That way,
// users can automatically access their files when logging in to a
// remote machine."
//
// This example plays both machines. The home workstation runs the
// user's real agent, holding her private key. She logs into a lab
// machine; the login session carries an agent-forwarding channel. The
// lab machine's agent holds NO key material — every authentication
// request travels back to the home agent, which signs it and records
// the full path of machines the request arrived through in its audit
// trail. When the session ends, nothing secret remains on the lab
// machine.
//
// Run: go run ./examples/proxyagent
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/agent"
	"repro/internal/lab"
	"repro/internal/vfs"
)

func main() {
	world, err := lab.NewWorld("proxyagent")
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()
	root := vfs.Cred{UID: 0, GIDs: []uint32{0}}

	// The file server with kaminsky's home directory.
	server, err := world.ServeFS("sfs.lcs.mit.example.com", 60000)
	if err != nil {
		log.Fatal(err)
	}
	if err := server.FS.WriteFile(root, "home/kaminsky/inbox", []byte("mail from home\n"), 0o644); err != nil {
		log.Fatal(err)
	}
	id, _, _ := server.FS.Resolve(root, "home/kaminsky")
	uid := uint32(1000)
	server.FS.SetAttrs(root, id, vfs.SetAttr{UID: &uid}) //nolint:errcheck

	// HOME MACHINE: client + real agent with the key, registered at
	// the server's authserver.
	homeClient, err := world.NewClient(lab.ClientOptions{EnhancedCaching: true, Seed: "home"})
	if err != nil {
		log.Fatal(err)
	}
	homeAgent, err := world.NewUser(homeClient, server, "kaminsky", 1000, "pw")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("home agent loaded with the user's private key")

	// LAB MACHINE: its own client daemon and a keyless agent. The
	// "ssh connection" is a pipe carrying the agent-forwarding
	// channel.
	sshChannel1, sshChannel2 := net.Pipe()
	go homeAgent.ServeSigner(sshChannel2) //nolint:errcheck

	labClient, err := world.NewClient(lab.ClientOptions{EnhancedCaching: true, Seed: "lab"})
	if err != nil {
		log.Fatal(err)
	}
	labAgent := agent.New("kaminsky", nil)
	labAgent.UseRemoteSigner(sshChannel1, "lab-machine")
	labClient.RegisterAgent("kaminsky", labAgent)
	fmt.Println("lab agent holds no keys; signing forwards over the login channel")

	// On the lab machine, the user's files are just there: the lab
	// client authenticates her through the proxied agent.
	data, err := labClient.ReadFile("kaminsky", server.Path.String()+"/home/kaminsky/inbox")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read from the lab machine: %s", data)

	// Writes carry her real credentials too.
	if err := labClient.WriteFile("kaminsky",
		server.Path.String()+"/home/kaminsky/from-the-lab", []byte("sent remotely\n")); err != nil {
		log.Fatal(err)
	}
	attr, _ := labClient.Stat("kaminsky", server.Path.String()+"/home/kaminsky/from-the-lab")
	fmt.Printf("file created from the lab is owned by uid %d\n", attr.UID)

	// The home agent audited every key operation, including the hop.
	for _, entry := range homeAgent.Audit() {
		fmt.Printf("audit: signed for %s seq=%d via %q\n", entry.Location, entry.SeqNo, entry.AuthPath)
	}

	// Session over: the forwarding channel closes, and the lab
	// machine can no longer authenticate as her.
	labAgent.ClearRemoteSigner()
	sshChannel1.Close()
	labClient2, err := world.NewClient(lab.ClientOptions{EnhancedCaching: true, Seed: "lab2"})
	if err != nil {
		log.Fatal(err)
	}
	labClient2.RegisterAgent("kaminsky", labAgent)
	if _, err := labClient2.ReadFile("kaminsky", server.Path.String()+"/home/kaminsky/inbox"); err != nil {
		fmt.Println("after logout, the lab machine is powerless:", err)
	} else {
		// The file is 0644 under a 0755 home dir, so anonymous
		// read still succeeds — demonstrate with the 0600 write
		// path instead.
		if err := labClient2.WriteFile("kaminsky",
			server.Path.String()+"/home/kaminsky/again", []byte("x")); err != nil {
			fmt.Println("after logout, writes as kaminsky fail:", err)
		} else {
			log.Fatal("lab machine still authenticated after logout!")
		}
	}
}
