// Password authentication of servers (paper §2.4): the MIT user
// travels to a research laboratory and wants her files back home.
// She types one password. sfskey uses SRP to negotiate a strong
// session key from it — exposing nothing an eavesdropper or even the
// laboratory's own network could use for off-line guessing — then
// downloads the server's self-certifying pathname and an encrypted
// copy of her private key over that channel, decrypts the key locally,
// and hands both to her agent. No system administrators, no
// certification authorities, no thinking about public keys.
//
// Run: go run ./examples/password
package main

import (
	"fmt"
	"log"

	"repro/internal/agent"
	"repro/internal/authserv"
	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/lab"
	"repro/internal/secchan"
	"repro/internal/sunrpc"
	"repro/internal/vfs"
)

func main() {
	world, err := lab.NewWorld("password")
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()
	root := vfs.Cred{UID: 0, GIDs: []uint32{0}}

	// Back at MIT: a file server with the user's home directory and
	// an authserver holding her SRP verifier and encrypted private
	// key — registered once, while she was at home.
	mit, err := world.ServeFS("sfs.lcs.mit.example.com", 60000)
	if err != nil {
		log.Fatal(err)
	}
	userKey, err := rabin.GenerateKey(world.RNG, lab.KeyBits)
	if err != nil {
		log.Fatal(err)
	}
	const password = "red sox beat yankees"
	if err := mit.Auth.Register(mit.DB, "kaminsky", 1000, []uint32{1000}, authserv.RegisterOptions{
		Password: password, PrivateKey: userKey, EksCost: 6,
	}); err != nil {
		log.Fatal(err)
	}
	mit.FS.WriteFile(root, "users/kaminsky/thesis.txt", []byte("chapter 1: ...\n"), 0o644) //nolint:errcheck
	id, _, _ := mit.FS.Resolve(root, "users/kaminsky")
	uid := uint32(1000)
	mit.FS.SetAttrs(root, id, vfs.SetAttr{UID: &uid}) //nolint:errcheck

	// At the laboratory: a client that knows only how to dial
	// locations. The user carries nothing but the password.
	fmt.Println("at the lab, running: sfskey fetch -user kaminsky sfs.lcs.mit.example.com")
	conn, err := world.Dial(mit.Location)
	if err != nil {
		log.Fatal(err)
	}
	rng := prng.NewSeeded([]byte("laptop"))
	tempKey, err := rabin.GenerateKey(rng, lab.KeyBits)
	if err != nil {
		log.Fatal(err)
	}
	// sfskey connects to the authserver service. NOTE: at this
	// point the user cannot yet certify the server — SRP both
	// authenticates the server to her and her to the server.
	sec, _, _, err := secchan.ClientHandshake(conn, secchan.ServiceAuth, mit.Path, tempKey, rng)
	if err != nil {
		log.Fatal(err)
	}
	rpc := sunrpc.NewClient(sec)
	res, err := authserv.FetchWithPassword(rpc, "kaminsky", password, rng)
	rpc.Close() //nolint:errcheck
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SRP exchange complete; downloaded:", res.SelfPath)
	if res.PrivateKey == nil {
		log.Fatal("no private key came back")
	}
	fmt.Println("private key decrypted locally (the server never sees the password)")

	// The agent gets the key and a symlink; transparently, the user
	// is authenticated on first access.
	cl, err := world.NewClient(lab.ClientOptions{EnhancedCaching: true, Seed: "lab-client"})
	if err != nil {
		log.Fatal(err)
	}
	a := agent.New("kaminsky", rng)
	a.AddKey(res.PrivateKey)
	cl.RegisterAgent("kaminsky", a)
	a.Symlink("mit", res.SelfPath)

	data, err := cl.ReadFile("kaminsky", "/sfs/mit/users/kaminsky/thesis.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reading home files through /sfs/mit: %s", data)

	// Wrong passwords fail without leaking guessing material.
	conn2, err := world.Dial(mit.Location)
	if err != nil {
		log.Fatal(err)
	}
	sec2, _, _, err := secchan.ClientHandshake(conn2, secchan.ServiceAuth, mit.Path, tempKey, rng)
	if err != nil {
		log.Fatal(err)
	}
	rpc2 := sunrpc.NewClient(sec2)
	defer rpc2.Close()
	if _, err := authserv.FetchWithPassword(rpc2, "kaminsky", "yankees beat red sox", rng); err == nil {
		log.Fatal("wrong password accepted!")
	}
	fmt.Println("wrong password correctly rejected (on-line guess, loggable by the server)")
	_ = core.Path{}
}
