// Quickstart: bring up a complete SFS deployment in one process —
// server master, authserver, client daemon, and a user agent — and
// access files through a self-certifying pathname.
//
// The flow mirrors the paper's §2.2: the server's pathname
// /sfs/Location:HostID is all a client ever needs; the HostID is a
// hash of the server's public key, so connecting to the right key is
// guaranteed by the name itself, with no key management inside the
// file system.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/lab"
	"repro/internal/vfs"
)

func main() {
	// A world is a server master listening on loopback TCP.
	world, err := lab.NewWorld("quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()

	// Serve a file system: this mints a key pair and registers the
	// (Location, key) pair with the master. Nobody was asked for
	// permission — anyone with a domain name can create a server.
	served, err := world.ServeFS("files.example.com", 60000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("self-certifying pathname:", served.Path.String())

	// Put some content on the server's substrate file system, plus
	// a home directory owned by alice.
	root := vfs.Cred{UID: 0, GIDs: []uint32{0}}
	if err := served.FS.WriteFile(root, "pub/hello.txt", []byte("hello over a secure channel\n"), 0o644); err != nil {
		log.Fatal(err)
	}
	homeID, err := served.FS.MkdirAll(root, "home/alice", 0o755)
	if err != nil {
		log.Fatal(err)
	}
	aliceUID := uint32(1000)
	if _, err := served.FS.SetAttrs(root, homeID, vfs.SetAttr{UID: &aliceUID}); err != nil {
		log.Fatal(err)
	}

	// A client daemon plus a user with a key pair registered at the
	// server's authserver.
	cl, err := world.NewClient(lab.ClientOptions{EnhancedCaching: true, Seed: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := world.NewUser(cl, served, "alice", 1000, "a long password"); err != nil {
		log.Fatal(err)
	}

	// Access by self-certifying pathname: the client dials the
	// location, checks the server's key against the HostID in the
	// name, negotiates session keys with forward secrecy, logs
	// alice in through her agent, and relays the reads.
	data, err := cl.ReadFile("alice", served.Path.String()+"/pub/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read: %s", data)

	// Writes carry alice's credentials, assigned by the authserver.
	home := served.Path.String() + "/home/alice/from-alice.txt"
	if err := cl.WriteFile("alice", home, []byte("written by alice\n")); err != nil {
		log.Fatal(err)
	}
	attr, err := cl.Stat("alice", home)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %s (owner uid %d, %d bytes)\n", home, attr.UID, attr.Size)

	// pwd inside SFS returns the self-certifying pathname — the
	// basis of secure bookmarks.
	pwd, err := cl.SelfPath("alice", served.Path.String()+"/pub")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pwd:", pwd)
}
