// The AFS conundrum (paper §5.1): two mutually distrustful users on
// one client. In AFS, a user who knows her session key can forge
// server replies and pollute the shared cache for other users. In
// SFS, both users name the server by HostID: if they agree on the
// name they are asking for the same public key, so sharing the cache
// is safe — neither knows the server's private key. If one user tries
// to direct the other at a different server, the pathnames (and hence
// the caches) differ.
//
// Run: go run ./examples/multiuser
package main

import (
	"fmt"
	"log"

	"repro/internal/lab"
	"repro/internal/vfs"
)

func main() {
	world, err := lab.NewWorld("multiuser")
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()
	root := vfs.Cred{UID: 0, GIDs: []uint32{0}}

	srv, err := world.ServeFS("shared.example.com", 60000)
	if err != nil {
		log.Fatal(err)
	}
	srv.FS.WriteFile(root, "pub/shared.txt", []byte("cached once, safely\n"), 0o644) //nolint:errcheck
	srv.FS.WriteFile(root, "home/alice/secret", []byte("alice's diary\n"), 0o600)    //nolint:errcheck
	// Give alice her file.
	id, _, _ := srv.FS.Resolve(root, "home/alice/secret")
	uid := uint32(1000)
	srv.FS.SetAttrs(root, id, vfs.SetAttr{UID: &uid}) //nolint:errcheck

	// One client daemon, two distrustful users. Both retrieved the
	// same self-certifying pathname (say, each with their own
	// password via SRP): same HostID, same mount, shared attribute
	// cache.
	cl, err := world.NewClient(lab.ClientOptions{EnhancedCaching: true, Seed: "multiuser"})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := world.NewUser(cl, srv, "alice", 1000, "alice's password"); err != nil {
		log.Fatal(err)
	}
	if _, err := world.NewUser(cl, srv, "mallory", 1001, "mallory's password"); err != nil {
		log.Fatal(err)
	}

	base := srv.Path.String()
	// Alice reads the shared file — populating the shared cache.
	if _, err := cl.ReadFile("alice", base+"/pub/shared.txt"); err != nil {
		log.Fatal(err)
	}
	st1, _ := cl.Stats("alice", base)
	// Mallory stats the same file: attribute cache hit, no extra
	// wire RPC needed for attributes — and that is SAFE, because
	// the cache is keyed by a handle under a server both users
	// independently certified by HostID.
	if _, err := cl.Stat("mallory", base+"/pub/shared.txt"); err != nil {
		log.Fatal(err)
	}
	st2, _ := cl.Stats("mallory", base)
	fmt.Printf("shared cache: %d attribute hits after alice warmed it (wire calls %d -> %d)\n",
		st2.AttrHits, st1.Calls, st2.Calls)

	// Per-user credentials still apply over the shared mount:
	// mallory cannot read alice's 0600 file.
	if _, err := cl.ReadFile("alice", base+"/home/alice/secret"); err != nil {
		log.Fatal("alice cannot read her own file:", err)
	}
	if _, err := cl.ReadFile("mallory", base+"/home/alice/secret"); err == nil {
		log.Fatal("mallory read alice's private file!")
	} else {
		fmt.Println("mallory denied on alice's 0600 file:", err)
	}

	// Neither user can forge server responses: they hold session
	// keys derived inside the client daemon, not user-visible
	// shared secrets as in AFS; and the server's identity was
	// pinned by the HostID each user asked for.
	fmt.Println("both users certified", srv.Path.Name(), "— cache sharing is safe by construction")
}
