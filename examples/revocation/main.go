// Key revocation and forwarding (paper §2.6): a server's private key
// is compromised, so its owner issues a self-authenticating revocation
// certificate. Anyone may distribute it — here the server itself
// answers connects with it, and an agent also finds it in an on-file
// revocation directory. A second server changes domain names the
// graceful way, with a forwarding pointer; and we show a revocation
// overruling a forwarding pointer for the same HostID.
//
// Run: go run ./examples/revocation
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/vfs"
)

func main() {
	world, err := lab.NewWorld("revocation")
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()
	root := vfs.Cred{UID: 0, GIDs: []uint32{0}}

	compromised, err := world.ServeFS("compromised.example.com", 60000)
	if err != nil {
		log.Fatal(err)
	}
	compromised.FS.WriteFile(root, "data", []byte("old data\n"), 0o644) //nolint:errcheck

	moved, err := world.ServeFS("old-name.example.com", 60000)
	if err != nil {
		log.Fatal(err)
	}
	newHome, err := world.ServeFS("new-name.example.com", 60000)
	if err != nil {
		log.Fatal(err)
	}
	newHome.FS.WriteFile(root, "users/dm/notes", []byte("moved but intact\n"), 0o644) //nolint:errcheck

	// A CA-style server publishing a revocation directory: files
	// named by HostID containing certificates. Because revocation
	// certificates are self-authenticating, the CA need not check
	// who submits them.
	ca, err := world.ServeFS("verisign.example.com", 60000)
	if err != nil {
		log.Fatal(err)
	}

	cl, err := world.NewClient(lab.ClientOptions{EnhancedCaching: true, Seed: "revocation"})
	if err != nil {
		log.Fatal(err)
	}
	a := world.NewAnonymousUser(cl, "user")

	// Before revocation the pathname works.
	if _, err := cl.ReadFile("user", compromised.Path.String()+"/data"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("before revocation: read OK from", compromised.Path.Name())

	// The owner issues a revocation certificate (requires the
	// private key) and the CA publishes it under the HostID.
	cert, err := core.NewRevocation(compromised.Key, compromised.Location, world.RNG)
	if err != nil {
		log.Fatal(err)
	}
	revPath := "revocations/" + compromised.Path.HostID.String()
	if err := ca.FS.WriteFile(root, revPath, cert.Marshal(), 0o644); err != nil {
		log.Fatal(err)
	}
	a.SetRevocationDirs([]string{ca.Path.String() + "/revocations"})

	if _, err := cl.ReadFile("user", compromised.Path.String()+"/data"); errors.Is(err, agent.ErrRevoked) {
		fmt.Println("after revocation: access refused —", err)
	} else {
		log.Fatalf("revocation did not take effect: %v", err)
	}

	// Graceful moves: a forwarding pointer from the old pathname to
	// the new one, signed by the old key.
	fwd, err := core.NewForward(moved.Key, moved.Location, newHome.Path, world.RNG)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.AddRevocation(fwd); err != nil {
		log.Fatal(err)
	}
	data, err := cl.ReadFile("user", moved.Path.String()+"/users/dm/notes")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forwarding pointer follows the move: %s", data)

	// If the old key is later revoked, the revocation overrules the
	// forwarding pointer.
	rev2, err := core.NewRevocation(moved.Key, moved.Location, world.RNG)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.AddRevocation(rev2); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.ReadFile("user", moved.Path.String()+"/users/dm/notes"); errors.Is(err, agent.ErrRevoked) {
		fmt.Println("revocation overrules the forwarding pointer —", err)
	} else {
		log.Fatalf("revocation did not overrule forward: %v", err)
	}

	// HostID blocking: one user's agent can block a HostID without
	// any signed certificate; other users are unaffected.
	other := world.NewAnonymousUser(cl, "other")
	_ = other
	a.Block(newHome.Path.HostID)
	if _, err := cl.ReadFile("user", newHome.Path.String()+"/users/dm/notes"); errors.Is(err, agent.ErrBlocked) {
		fmt.Println("user's agent blocks the HostID —", err)
	} else {
		log.Fatalf("block did not take effect: %v", err)
	}
	if _, err := cl.ReadFile("other", newHome.Path.String()+"/users/dm/notes"); err != nil {
		log.Fatalf("another user was affected by the block: %v", err)
	}
	fmt.Println("other users are unaffected by the per-agent block")
}
