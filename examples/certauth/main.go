// Certification authorities as file systems (paper §2.4): a CA in SFS
// is nothing more than an ordinary file system serving symbolic links
// whose targets are self-certifying pathnames. This example builds
// one, resolves names through it with a certification path, and then
// republishes it with the read-only dialect so untrusted replicas can
// serve it — the deployment the paper prescribes for the high
// integrity/availability needs of interactively-queried CAs.
//
// Run: go run ./examples/certauth
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/lab"
	"repro/internal/sfsro"
	"repro/internal/vfs"
)

func main() {
	world, err := lab.NewWorld("certauth")
	if err != nil {
		log.Fatal(err)
	}
	defer world.Close()
	root := vfs.Cred{UID: 0, GIDs: []uint32{0}}

	// Two ordinary servers the CA will certify.
	redhat, err := world.ServeFS("redhat.example.com", 60000)
	if err != nil {
		log.Fatal(err)
	}
	mit, err := world.ServeFS("sfs.lcs.mit.example.com", 60000)
	if err != nil {
		log.Fatal(err)
	}
	redhat.FS.WriteFile(root, "pub/release.txt", []byte("redhat 6.1 sources\n"), 0o644)     //nolint:errcheck
	mit.FS.WriteFile(root, "users/dm/plan.txt", []byte("separate key management\n"), 0o644) //nolint:errcheck

	// The CA: a file system of symbolic links. Creating a
	// certification authority requires no special machinery —
	// "symbolic links do the job".
	ca, err := world.ServeFS("verisign.example.com", 60000)
	if err != nil {
		log.Fatal(err)
	}
	ca.FS.SymlinkAt(root, "links/redhat", redhat.Path.String()) //nolint:errcheck
	ca.FS.SymlinkAt(root, "links/mit", mit.Path.String())       //nolint:errcheck
	fmt.Println("CA serves links at", ca.Path.String()+"/links")

	// A user configures the CA as a certification path: names under
	// /sfs that are not self-certifying are resolved through it.
	cl, err := world.NewClient(lab.ClientOptions{EnhancedCaching: true, Seed: "certauth"})
	if err != nil {
		log.Fatal(err)
	}
	a := world.NewAnonymousUser(cl, "user")
	a.SetCertPaths([]string{ca.Path.String() + "/links"})

	data, err := cl.ReadFile("user", "/sfs/redhat/pub/release.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("via CA, /sfs/redhat resolves and reads: %s", data)
	data, err = cl.ReadFile("user", "/sfs/mit/users/dm/plan.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("via CA, /sfs/mit reads: %s", data)

	// Republish the CA's links with the read-only dialect: one
	// offline signature over a hash tree; the private key never
	// touches the serving machines.
	db, err := sfsro.BuildFromVFS(ca.FS, ca.Location, ca.Key, 1, 24*time.Hour, world.RNG, time.Now())
	if err != nil {
		log.Fatal(err)
	}
	replica, err := sfsro.NewReplica(db)
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go replica.ListenAndServe(l) //nolint:errcheck

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	rocl, err := sfsro.DialClient(conn, replica.Path(), 0)
	if err != nil {
		log.Fatal(err)
	}
	defer rocl.Close()
	target, err := rocl.ReadLink("links/redhat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("untrusted replica serves verified link: redhat ->", target)
	fmt.Printf("replica database: %d content-addressed blobs, version %d\n",
		len(db.Blobs), rocl.Version())

	// Finally, mount the read-only CA through the normal /sfs
	// namespace (a second "CA" location served only read-only) and
	// point the certification path at it: the client transparently
	// falls back to the read-only dialect when a location is not
	// served read-write.
	roKey := ca.Key // reuse the CA's publisher key under a new location
	roDB, err := sfsro.BuildFromVFS(ca.FS, "ro-ca.example.com", roKey, 2, 24*time.Hour, world.RNG, time.Now())
	if err != nil {
		log.Fatal(err)
	}
	roPath, err := world.ServeReadOnly(roDB)
	if err != nil {
		log.Fatal(err)
	}
	a.SetCertPaths([]string{roPath.String() + "/links"})
	data, err = cl.ReadFile("user", "/sfs/mit/users/dm/plan.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("via the READ-ONLY CA mount at %s: %s", roPath.Name(), data)
}
