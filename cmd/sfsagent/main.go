// Command sfsagent inspects and exercises an SFS user agent offline
// (paper §2.3, §2.5.1). The agent proper runs inside sfscd in this
// reproduction; this tool performs the agent's standalone key
// operations so they can be scripted:
//
//	sfsagent sign   -k key.sfs -location HOST -hostid ID -session HEX -seq N
//	sfsagent verify -msg HEX -location HOST -hostid ID -session HEX -seq N
//	sfsagent revcheck -cert FILE -location HOST -hostid ID
//
// "sign" emits the opaque authentication message an agent would hand
// the client for one session; "verify" replays the authserver's check;
// "revcheck" validates a revocation certificate against a pathname.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/keyfile"
	"repro/internal/sfsrpc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "sign":
		cmdSign(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "revcheck":
		cmdRevCheck(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sfsagent sign|verify|revcheck [flags]")
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "sfsagent:", err)
	os.Exit(1)
}

func parseSession(fs *flag.FlagSet) (string, core.HostID, [20]byte, uint) {
	location := fs.Lookup("location").Value.String()
	hostidStr := fs.Lookup("hostid").Value.String()
	sessionHex := fs.Lookup("session").Value.String()
	seqStr := fs.Lookup("seq").Value.(flag.Getter).Get().(uint)
	id, err := core.ParseHostID(hostidStr)
	if err != nil {
		die(err)
	}
	var sid [20]byte
	raw, err := hex.DecodeString(sessionHex)
	if err != nil || len(raw) != 20 {
		die(fmt.Errorf("-session must be 40 hex characters"))
	}
	copy(sid[:], raw)
	return location, id, sid, seqStr
}

func sessionFlags(fs *flag.FlagSet) {
	fs.String("location", "", "server location")
	fs.String("hostid", "", "server HostID (base 32)")
	fs.String("session", "", "SessionID (hex)")
	fs.Uint("seq", 1, "sequence number")
}

func cmdSign(args []string) {
	fs := flag.NewFlagSet("sign", flag.ExitOnError)
	kf := fs.String("k", "key.sfs", "user key file")
	sessionFlags(fs)
	fs.Parse(args) //nolint:errcheck
	location, id, sid, seq := parseSession(fs)
	key, err := keyfile.Load(*kf)
	if err != nil {
		die(err)
	}
	ai := sfsrpc.NewAuthInfo(location, id, sid)
	req := sfsrpc.SignedAuthReq{Tag: "SignedAuthReq", AuthID: ai.AuthID(), SeqNo: uint32(seq)}
	sig, err := key.Sign(prng.New(), req.Digest())
	if err != nil {
		die(err)
	}
	msg := sfsrpc.AuthMsg{UserKey: key.PublicKey.Bytes(), Req: req, Sig: *sig}
	fmt.Println(hex.EncodeToString(msg.Marshal()))
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	msgHex := fs.String("msg", "", "authentication message (hex)")
	sessionFlags(fs)
	fs.Parse(args) //nolint:errcheck
	location, id, sid, seq := parseSession(fs)
	raw, err := hex.DecodeString(*msgHex)
	if err != nil {
		die(err)
	}
	msg, err := sfsrpc.ParseAuthMsg(raw)
	if err != nil {
		die(err)
	}
	ai := sfsrpc.NewAuthInfo(location, id, sid)
	if _, err := msg.Verify(ai, uint32(seq)); err != nil {
		die(fmt.Errorf("verification failed: %w", err))
	}
	fmt.Println("OK")
}

func cmdRevCheck(args []string) {
	fs := flag.NewFlagSet("revcheck", flag.ExitOnError)
	certFile := fs.String("cert", "", "revocation certificate file")
	location := fs.String("location", "", "server location")
	hostid := fs.String("hostid", "", "server HostID (base 32)")
	fs.Parse(args) //nolint:errcheck
	data, err := os.ReadFile(*certFile)
	if err != nil {
		die(err)
	}
	cert, id, err := core.ParsePathRevoke(data)
	if err != nil {
		die(fmt.Errorf("certificate invalid: %w", err))
	}
	want, err := core.ParseHostID(*hostid)
	if err != nil {
		die(err)
	}
	if id != want || cert.Location != *location {
		die(fmt.Errorf("certificate is for %s:%s, not the given pathname", cert.Location, id))
	}
	if cert.IsRevocation() {
		fmt.Println("REVOKED")
	} else {
		target, _ := cert.ForwardTarget()
		fmt.Printf("FORWARDED to %s\n", target.String())
	}
}
