// Command sfscd is the SFS client daemon (paper §2.3, §3.3) packaged
// as an interactive shell: where the paper's sfscd answers kernel NFS
// RPCs for /sfs, this reproduction exposes the same client — secure
// channels, HostID verification, automounting, agents, certification
// paths — through a small command interpreter.
//
// Usage:
//
//	sfscd -server HOST=ADDR[,HOST=ADDR...] [-user NAME] [-keyfile key.sfs] \
//	      [-link NAME=TARGET]... [-certpath DIR]...
//
// Commands on stdin:
//
//	ls PATH         list a directory under /sfs
//	ll PATH         long listing with sizes and "%user" owner names
//	cat PATH        print a file
//	put PATH TEXT   write a file
//	rm PATH         remove a file
//	mkdir PATH      create a directory
//	ln NAME TARGET  create an agent symlink in /sfs
//	pwd PATH        print the self-certifying pathname of PATH's server
//	bookmark NAME PATH   record a secure bookmark for PATH's server
//	bookmarks       list secure bookmarks
//	block HOSTID    block a HostID in this agent (no other user affected)
//	sfs             list this user's view of /sfs
//	stats           print the client's pipeline and per-mount counters
//	lat             print per-stage RPC latency (p50/p95/p99, needs -trace)
//	quit
//
// -v reports each command's wall time and how many RPCs it cost.
// -stats ADDR serves the same counters as JSON at http://ADDR/stats.
// -quiet turns off the single-line dial/close connection log.
// -trace records a per-RPC stage span for every mount's calls;
// -trace-ring N sizes the span ring and -trace-slow DUR logs a
// one-line stage waterfall for RPCs slower than DUR (DESIGN.md §13).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agent"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/keyfile"
	"repro/internal/stats"
)

// loggedConn meters one dialed connection and emits a single close
// line with duration and byte counts.
type loggedConn struct {
	net.Conn
	location string
	start    time.Time
	logf     func(format string, args ...interface{})
	in, out  atomic.Uint64
	once     sync.Once
}

func (c *loggedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(uint64(n))
	return n, err
}

func (c *loggedConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(uint64(n))
	return n, err
}

func (c *loggedConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(func() {
		c.logf("close location=%s dur=%s in=%d out=%d",
			c.location, time.Since(c.start).Round(time.Millisecond), c.in.Load(), c.out.Load())
	})
	return err
}

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	servers := flag.String("server", "", "comma-separated HOST=ADDR map for dialing locations")
	user := flag.String("user", "user", "local user name")
	kf := flag.String("keyfile", "", "user private key for authentication")
	verbose := flag.Bool("v", false, "report wall time and RPC count per command")
	statsAddr := flag.String("stats", "", "serve JSON counters and pprof on this address")
	quiet := flag.Bool("quiet", false, "suppress per-connection dial/close logging")
	trace := flag.Bool("trace", false, "record per-RPC stage spans and latency histograms")
	traceRing := flag.Int("trace-ring", 256, "capacity of the per-mount trace ring")
	traceSlow := flag.Duration("trace-slow", 0, "log a stage waterfall for RPCs slower than this (implies -trace)")
	var links, certpaths listFlag
	flag.Var(&links, "link", "agent symlink NAME=TARGET (repeatable)")
	flag.Var(&certpaths, "certpath", "certification path directory (repeatable)")
	flag.Parse()

	var connLog func(format string, args ...interface{})
	if !*quiet {
		connLog = log.New(os.Stderr, "sfscd: ", log.LstdFlags).Printf
	}

	addrs := map[string]string{}
	if *servers != "" {
		for _, kv := range strings.Split(*servers, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				die(fmt.Errorf("bad -server entry %q", kv))
			}
			addrs[parts[0]] = parts[1]
		}
	}
	cfg := client.Config{
		Dial: func(location string) (net.Conn, error) {
			addr, ok := addrs[location]
			if !ok {
				addr = location // fall back to dialing the location itself
			}
			conn, err := net.Dial("tcp", addr)
			if err != nil || connLog == nil {
				return conn, err
			}
			connLog("dial location=%s addr=%s", location, addr)
			return &loggedConn{Conn: conn, location: location, start: time.Now(), logf: connLog}, nil
		},
		RNG:             prng.New(),
		EnhancedCaching: true,
	}
	if *trace || *traceSlow > 0 {
		cfg.TraceSpans = *traceRing
		cfg.TraceSlow = *traceSlow
		cfg.TraceLogf = log.New(os.Stderr, "sfscd: ", log.LstdFlags).Printf
	}
	cl, err := client.New(cfg)
	if err != nil {
		die(err)
	}
	if *statsAddr != "" {
		// See sfssd: contention profiling comes with the endpoint.
		stats.EnableContentionProfiles(5, int(time.Millisecond))
		ln, err := stats.Serve(*statsAddr, func() any { return cl.StatsSnapshot() })
		if err != nil {
			die(err)
		}
		fmt.Printf("sfscd: stats on http://%s/stats\n", ln.Addr())
	}
	a := agent.New(*user, prng.New())
	if *kf != "" {
		key, err := keyfile.Load(*kf)
		if err != nil {
			die(err)
		}
		a.AddKey(key)
	}
	for _, l := range links {
		parts := strings.SplitN(l, "=", 2)
		if len(parts) != 2 {
			die(fmt.Errorf("bad -link %q", l))
		}
		a.Symlink(parts[0], parts[1])
	}
	if len(certpaths) > 0 {
		a.SetCertPaths(certpaths)
	}
	cl.RegisterAgent(*user, a)

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("sfs> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			rpc0 := cl.TotalRPCs()
			t0 := time.Now()
			quit := run(cl, a, *user, line)
			if *verbose {
				fmt.Printf("(%s, %d RPCs)\n",
					time.Since(t0).Round(time.Microsecond), cl.TotalRPCs()-rpc0)
			}
			if quit {
				return
			}
		}
		fmt.Print("sfs> ")
	}
}

func run(cl *client.Client, a *agent.Agent, user, line string) bool {
	fields := strings.Fields(line)
	cmd := fields[0]
	arg := func(i int) string {
		if i < len(fields) {
			return fields[i]
		}
		return ""
	}
	switch cmd {
	case "quit", "exit":
		return true
	case "ls":
		ents, err := cl.ReadDir(user, arg(1))
		if err != nil {
			warn(err)
			return false
		}
		for _, e := range ents {
			fmt.Println(e.Name)
		}
	case "ll":
		dir := strings.TrimSuffix(arg(1), "/")
		ents, err := cl.ReadDir(user, dir)
		if err != nil {
			warn(err)
			return false
		}
		for _, e := range ents {
			attr, err := cl.Lstat(user, dir+"/"+e.Name)
			if err != nil {
				warn(err)
				continue
			}
			owner, err := cl.UserName(user, dir, attr.UID)
			if err != nil {
				owner = fmt.Sprintf("%d", attr.UID)
			}
			fmt.Printf("%04o %-12s %8d %s\n", attr.Mode, owner, attr.Size, e.Name)
		}
	case "rm":
		if err := cl.Remove(user, arg(1)); err != nil {
			warn(err)
		}
	case "mkdir":
		if err := cl.Mkdir(user, arg(1), 0o755); err != nil {
			warn(err)
		}
	case "cat":
		data, err := cl.ReadFile(user, arg(1))
		if err != nil {
			warn(err)
			return false
		}
		os.Stdout.Write(data) //nolint:errcheck
		fmt.Println()
	case "put":
		// Unlike client.WriteFile (flush only — acknowledged unstable),
		// put ends with a COMMIT: once the prompt returns, the data must
		// survive a server crash. The CI recovery smoke relies on this.
		if err := putDurable(cl, user, arg(1), strings.Join(fields[2:], " ")); err != nil {
			warn(err)
		}
	case "ln":
		a.Symlink(arg(1), arg(2))
	case "pwd":
		p, err := cl.SelfPath(user, arg(1))
		if err != nil {
			warn(err)
			return false
		}
		fmt.Println(p)
	case "bookmark":
		p, err := cl.SelfPath(user, arg(2))
		if err != nil {
			warn(err)
			return false
		}
		parsed, err := core.Parse(p)
		if err != nil {
			warn(err)
			return false
		}
		a.Bookmark(arg(1), parsed)
		a.Symlink(arg(1), p)
	case "bookmarks":
		for name, p := range a.Bookmarks() {
			fmt.Printf("%-16s %s\n", name, p)
		}
	case "block":
		id, err := core.ParseHostID(arg(1))
		if err != nil {
			warn(err)
			return false
		}
		a.Block(id)
	case "sfs":
		for _, name := range cl.ListSFS(user) {
			fmt.Println(name)
		}
	case "stats":
		out, err := json.MarshalIndent(cl.StatsSnapshot(), "", "  ")
		if err != nil {
			warn(err)
			return false
		}
		fmt.Println(string(out))
	case "lat":
		// Derived p50/p95/p99 per stage instead of raw bucket dumps;
		// the full histograms stay in the JSON "stats" output.
		any := false
		for _, m := range cl.StatsSnapshot().Mounts {
			if m.Stages == nil || m.Stages.Total.Count == 0 {
				continue
			}
			any = true
			fmt.Printf("%s\n%s", m.Path, m.Stages.Table())
		}
		if !any {
			fmt.Println("no stage data (start sfscd with -trace)")
		}
	default:
		fmt.Println("commands: ls ll cat put rm mkdir ln pwd bookmark bookmarks block sfs stats lat quit")
	}
	return false
}

// putDurable writes text to path and waits for the server to commit
// it to stable storage.
func putDurable(cl *client.Client, user, path, text string) error {
	f, err := cl.Create(user, path, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt([]byte(text), 0); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	return f.Close()
}

func warn(err error) { fmt.Fprintln(os.Stderr, "sfscd:", err) }

func die(err error) {
	fmt.Fprintln(os.Stderr, "sfscd:", err)
	os.Exit(1)
}
