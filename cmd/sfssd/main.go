// Command sfssd is the SFS server master (paper §3.2): it serves a
// file system under a self-certifying pathname, answers connect
// requests, negotiates secure channels, and runs the authserver
// alongside the file service.
//
// Usage:
//
//	sfssd -listen :4655 -location files.example.com -keyfile srv.sfs \
//	      [-store mem|disk -dir PATH] [-seed DIR] [-lease 60000] \
//	      [-user name:uid:password:keyfile]...
//
// -store selects the durable storage backend: "mem" (default) serves
// from memory and loses everything at exit; "disk" journals every
// mutation to a group-commit write-ahead log under -dir and replays
// it at boot, so acknowledged COMMITs survive a kill -9 (DESIGN.md
// §11).
//
// On the disk store, recovery time and memory are bounded
// (DESIGN.md §15): -checkpoint-bytes (default 64 MiB) snapshots the
// file system into an atomic checkpoint image and compacts the WAL
// whenever the journal's live bytes reach the threshold, and
// -checkpoint-interval adds a timer trigger; boot then loads the
// newest valid image and replays only the journal tail, logging the
// two phases' MB/s separately. -hot-bytes (default 64 MiB) bounds
// resident file content — colder extents page out to an extent file
// and fault back in on demand, so the served data set can exceed RAM.
//
// -seed copies a host directory tree into the served substrate file
// system (on every boot — pair it with -store disk only for first
// runs, since re-seeding re-journals the tree). Each -user registers
// a user with the
// authserver: a key pair is generated and written to the named file,
// and, when a password is given, SRP data plus an encrypted copy of
// the private key are stored so "sfskey fetch" works against this
// server.
//
// -stats ADDR serves live counters as JSON at http://ADDR/stats
// (net/http/pprof rides along under /debug/pprof/). -quiet turns off
// the single-line accept/close connection log.
//
// -trace records a per-RPC stage span (encode, seal, queue, dispatch,
// vfs, fsync, reply) for every file RPC; the per-stage log2 histograms
// with derived p50/p95/p99 appear under "nfs" in the stats endpoint.
// -trace-ring N sizes the in-memory span ring (default 256) and
// -trace-slow DUR logs a one-line stage waterfall for any RPC slower
// than DUR (DESIGN.md §13).
//
// Connection admission (DESIGN.md §14): full key negotiations run on
// a bounded worker pool — -hs-workers (default NumCPU) with
// -hs-backlog queued arrivals beyond it (default 16×workers) — and
// anything past that is fast-rejected with a busy status, so connect
// storms degrade to queuing instead of unbounded Rabin decrypts.
// -handshake-timeout (default 5s) cuts off peers that stall
// mid-negotiation, freeing their pool slot and counting a
// handshake timeout in the stats. -resume-cache BYTES (default 1 MiB,
// 0 disables) and -resume-ttl bound the session-resumption cache that
// lets reconnecting clients skip the public-key handshake entirely.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/authserv"
	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/keyfile"
	"repro/internal/secchan"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/storage/diskstore"
	"repro/internal/sunrpc"
	"repro/internal/vfs"
)

type userFlag []string

func (u *userFlag) String() string     { return strings.Join(*u, ",") }
func (u *userFlag) Set(s string) error { *u = append(*u, s); return nil }

func main() {
	listen := flag.String("listen", ":4655", "TCP listen address")
	location := flag.String("location", "", "server location (DNS name in pathnames)")
	kf := flag.String("keyfile", "", "server private key (sfskey gen)")
	store := flag.String("store", "mem", "storage backend: mem (volatile) or disk (WAL under -dir)")
	dir := flag.String("dir", "", "disk store directory (required with -store disk)")
	seed := flag.String("seed", "", "host directory to copy into the served file system")
	lease := flag.Uint("lease", 60000, "attribute lease in ms (0 disables SFS caching extensions)")
	statsAddr := flag.String("stats", "", "serve JSON counters and pprof on this address")
	quiet := flag.Bool("quiet", false, "suppress per-connection accept/close logging")
	trace := flag.Bool("trace", false, "record per-RPC stage spans and latency histograms")
	traceRing := flag.Int("trace-ring", 256, "capacity of the xid-tagged trace ring")
	traceSlow := flag.Duration("trace-slow", 0, "log a stage waterfall for RPCs slower than this (implies -trace)")
	hsTimeout := flag.Duration("handshake-timeout", 5*time.Second, "deadline for key negotiation (0 disables)")
	hsWorkers := flag.Int("hs-workers", 0, "negotiation pool size for full handshakes (0 = NumCPU)")
	hsBacklog := flag.Int("hs-backlog", 0, "queued handshakes beyond the pool before fast-reject (0 = 16x workers)")
	resumeCache := flag.Int64("resume-cache", 1<<20, "session-resumption cache budget in bytes (0 disables)")
	resumeTTL := flag.Duration("resume-ttl", time.Hour, "lifetime of cached resumption sessions")
	ckptBytes := flag.Uint64("checkpoint-bytes", 64<<20, "checkpoint when WAL live bytes reach this (0 disables; -store disk)")
	ckptEvery := flag.Duration("checkpoint-interval", 0, "also checkpoint on this interval (0 disables; -store disk)")
	hotBytes := flag.Uint64("hot-bytes", diskstore.DefaultHotBytes, "resident content budget; colder extents page from disk (-store disk)")
	var users userFlag
	flag.Var(&users, "user", "register user name:uid:password:keyfile (repeatable)")
	flag.Parse()
	if *location == "" || *kf == "" {
		fmt.Fprintln(os.Stderr, "sfssd: -location and -keyfile are required")
		os.Exit(2)
	}
	key, err := keyfile.Load(*kf)
	if err != nil {
		die(err)
	}
	rng := prng.New()
	var fsys *vfs.FS
	switch *store {
	case "mem":
		fsys = vfs.New()
	case "disk":
		if *dir == "" {
			fmt.Fprintln(os.Stderr, "sfssd: -store disk requires -dir")
			os.Exit(2)
		}
		if err := os.MkdirAll(*dir, 0o700); err != nil {
			die(err)
		}
		ds, err := diskstore.Open(*dir, diskstore.Options{HotBytes: *hotBytes})
		if err != nil {
			die(err)
		}
		fsys, err = vfs.NewWithStores(ds, ds)
		if err != nil {
			die(err)
		}
		rp := fsys.LastReplay()
		fmt.Printf("sfssd: disk store in %s (epoch %d, replayed %d records, %d bytes)\n",
			*dir, ds.Epoch(), rp.Records, rp.Bytes)
		// Recovery phase breakdown: the image loads at sequential-scan
		// speed while the tail replays record-by-record — the gap is
		// exactly what checkpointing buys (DESIGN.md §15).
		fmt.Printf("sfssd: recovery: checkpoint %d records at %.1f MB/s, tail %d records at %.1f MB/s\n",
			rp.CheckpointRecords, rp.CheckpointMBps(), rp.TailRecords, rp.TailMBps())
		// The daemon runs until killed, so the stop handle is unused.
		_ = fsys.StartAutoCheckpoint(*ckptBytes, *ckptEvery)
	default:
		fmt.Fprintf(os.Stderr, "sfssd: unknown -store %q (want mem or disk)\n", *store)
		os.Exit(2)
	}
	if *seed != "" {
		if err := fsys.SeedFromHost(vfs.Cred{UID: 0}, *seed); err != nil {
			die(err)
		}
	}
	path := core.MakePath(*location, key.PublicKey.Bytes())
	auth := authserv.New(path.String(), rng)
	db := authserv.NewDB("local", true)
	auth.AddDB(db)
	for _, spec := range users {
		if err := registerUser(auth, db, rng, spec); err != nil {
			die(err)
		}
	}
	master := server.New(rng)
	cacheBytes := *resumeCache
	if cacheBytes == 0 {
		cacheBytes = -1 // flag 0 means "off"; negative is the policy's off switch
	}
	master.SetHandshakePolicy(server.HandshakePolicy{
		Workers: *hsWorkers, Backlog: *hsBacklog, Timeout: *hsTimeout,
		ResumeCacheBytes: cacheBytes, ResumeTTL: *resumeTTL,
	})
	if !*quiet {
		master.SetLogf(log.New(os.Stderr, "sfssd: ", log.LstdFlags).Printf)
	}
	srvCfg := server.ServedConfig{
		Location: *location, Key: key, FS: fsys, Auth: auth, LeaseMS: uint32(*lease),
	}
	if *trace || *traceSlow > 0 {
		srvCfg.TraceSpans = *traceRing
		srvCfg.TraceSlow = *traceSlow
	}
	if _, err := master.Serve(srvCfg); err != nil {
		die(err)
	}
	if *statsAddr != "" {
		// Mutex/block profiling rides along with the stats endpoint:
		// /debug/pprof/mutex and /debug/pprof/block then localize any
		// contention the sharded-lock counters report.
		stats.EnableContentionProfiles(5, int(time.Millisecond))
		ln, err := stats.Serve(*statsAddr, func() any {
			ms := master.StatsSnapshot()
			nfsByLoc := ms.Locations
			ms.Locations = nil
			doc := map[string]any{
				"master":   ms,
				"nfs":      nfsByLoc,
				"sunrpc":   sunrpc.WireSnapshot(),
				"secchan":  secchan.StatsSnapshot(),
				"authserv": auth.StatsSnapshot(),
				// Zero-copy wire path accounting (DESIGN.md §12); also
				// embedded per-location under "nfs" as wire_copy.
				"wire_copy": stats.WireCopySnapshot(),
			}
			// The disk store's WAL counters also appear per-location
			// under "nfs"; the top-level section is the convenient
			// handle for dashboards and the CI recovery smoke.
			if ss := fsys.StorageStats(); ss != nil {
				doc["storage"] = ss
			}
			return doc
		})
		if err != nil {
			die(err)
		}
		fmt.Printf("sfssd: stats on http://%s/stats\n", ln.Addr())
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		die(err)
	}
	fmt.Printf("sfssd: serving %s on %s\n", path.String(), l.Addr())
	die(master.ListenAndServe(l))
}

func registerUser(auth *authserv.Server, db *authserv.DB, rng *prng.Generator, spec string) error {
	parts := strings.SplitN(spec, ":", 4)
	if len(parts) != 4 {
		return fmt.Errorf("bad -user %q (want name:uid:password:keyfile)", spec)
	}
	name, uidStr, password, kf := parts[0], parts[1], parts[2], parts[3]
	uid, err := strconv.ParseUint(uidStr, 10, 32)
	if err != nil {
		return fmt.Errorf("bad uid in -user %q: %w", spec, err)
	}
	var key *rabin.PrivateKey
	if _, err := os.Stat(kf); err == nil {
		key, err = keyfile.Load(kf)
		if err != nil {
			return err
		}
	} else {
		key, err = rabin.GenerateKey(rng, 1024)
		if err != nil {
			return err
		}
		if err := keyfile.Save(kf, key); err != nil {
			return err
		}
		fmt.Printf("sfssd: generated key for %s in %s\n", name, kf)
	}
	return auth.Register(db, name, uint32(uid), []uint32{uint32(uid)}, authserv.RegisterOptions{
		Password:   password,
		PrivateKey: key,
	})
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "sfssd:", err)
	os.Exit(1)
}
