// Command sfsrodb manages SFS read-only databases (paper §2.4, §3.2):
// it signs a snapshot of a directory tree offline, serves the database
// from an untrusted replica, and fetches+verifies files from replicas.
//
// Subcommands:
//
//	sfsrodb build -seed DIR -location HOST -keyfile key.sfs -o fs.sfsro \
//	              [-version N] [-ttl 24h]
//	sfsrodb serve -db fs.sfsro -listen :4656 [-quiet]
//	sfsrodb get   -addr ADDR -path SELFCERT_PATH -file F
//
// serve logs one structured line per accepted and closed connection
// (peer, dialect, duration, bytes); -quiet suppresses them.
//
// "build" is the only step needing the private key; "serve" runs
// anywhere — the replica proves nothing, clients verify everything.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/keyfile"
	"repro/internal/sfsro"
	"repro/internal/vfs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		cmdBuild(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "get":
		cmdGet(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sfsrodb build|serve|get [flags]")
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "sfsrodb:", err)
	os.Exit(1)
}

func cmdBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	seed := fs.String("seed", "", "directory tree to snapshot")
	location := fs.String("location", "", "server location")
	kf := fs.String("keyfile", "", "signing key")
	out := fs.String("o", "fs.sfsro", "output database")
	version := fs.Uint64("version", 1, "snapshot version (monotonic)")
	ttl := fs.Duration("ttl", 24*time.Hour, "validity period")
	fs.Parse(args) //nolint:errcheck
	if *seed == "" || *location == "" || *kf == "" {
		die(fmt.Errorf("-seed, -location, and -keyfile are required"))
	}
	key, err := keyfile.Load(*kf)
	if err != nil {
		die(err)
	}
	fsys := vfs.New()
	if err := fsys.SeedFromHost(vfs.Cred{UID: 0}, *seed); err != nil {
		die(err)
	}
	rng := prng.New()
	db, err := sfsro.BuildFromVFS(fsys, *location, key, *version, *ttl, rng, time.Now())
	if err != nil {
		die(err)
	}
	if err := os.WriteFile(*out, db.Marshal(), 0o644); err != nil {
		die(err)
	}
	p := core.MakePath(*location, key.PublicKey.Bytes())
	fmt.Printf("signed %d blobs (version %d) into %s\n", len(db.Blobs), *version, *out)
	fmt.Printf("serve it anywhere; clients verify against %s\n", p.String())
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dbPath := fs.String("db", "fs.sfsro", "database file")
	listen := fs.String("listen", ":4656", "TCP listen address")
	quiet := fs.Bool("quiet", false, "suppress per-connection accept/close logging")
	fs.Parse(args) //nolint:errcheck
	data, err := os.ReadFile(*dbPath)
	if err != nil {
		die(err)
	}
	db, err := sfsro.ParseDB(data)
	if err != nil {
		die(err)
	}
	rep, err := sfsro.NewReplica(db)
	if err != nil {
		die(err)
	}
	if !*quiet {
		rep.SetLogf(log.New(os.Stderr, "sfsrodb: ", log.LstdFlags).Printf)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		die(err)
	}
	fmt.Printf("replica (no private key on this machine) serving %s on %s\n",
		rep.Path().String(), l.Addr())
	die(rep.ListenAndServe(l))
}

func cmdGet(args []string) {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	addr := fs.String("addr", "", "replica TCP address")
	pathStr := fs.String("path", "", "self-certifying pathname to verify against")
	file := fs.String("file", "", "file to fetch (relative to the root)")
	fs.Parse(args) //nolint:errcheck
	if *addr == "" || *pathStr == "" {
		die(fmt.Errorf("-addr and -path are required"))
	}
	p, err := core.Parse(*pathStr)
	if err != nil {
		die(err)
	}
	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		die(err)
	}
	cl, err := sfsro.DialClient(conn, p, 0)
	if err != nil {
		die(err)
	}
	defer cl.Close()
	if *file == "" {
		ents, err := cl.ReadDir("")
		if err != nil {
			die(err)
		}
		for _, e := range ents {
			fmt.Println(e.Name)
		}
		return
	}
	data, err := cl.ReadFile(*file)
	if err != nil {
		die(err)
	}
	os.Stdout.Write(data) //nolint:errcheck
}
