// Command sfsauthd administers SFS authserver databases (paper §2.5):
// it creates user databases, registers users with passwords and keys,
// and exports the public half for other servers to import read-only.
//
// Subcommands:
//
//	sfsauthd init    -db users.db
//	sfsauthd adduser -db users.db -selfpath PATH -user U -uid N \
//	                 [-password PW] [-keyfile key.sfs]
//	sfsauthd list    -db users.db
//	sfsauthd export  -db users.db -o public.db
//
// The exported public database contains public keys and credentials
// but nothing with which an attacker could verify a guessed password;
// it is safe to serve to the world over SFS itself.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/authserv"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/keyfile"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "init":
		cmdInit(os.Args[2:])
	case "adduser":
		cmdAddUser(os.Args[2:])
	case "list":
		cmdList(os.Args[2:])
	case "export":
		cmdExport(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sfsauthd init|adduser|list|export [flags]")
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "sfsauthd:", err)
	os.Exit(1)
}

func loadDB(path string) *authserv.DB {
	data, err := os.ReadFile(path)
	if err != nil {
		die(err)
	}
	db, err := authserv.ImportFull(data)
	if err != nil {
		die(err)
	}
	return db
}

func saveDB(path string, db *authserv.DB) {
	if err := os.WriteFile(path, db.ExportFull(), 0o600); err != nil {
		die(err)
	}
}

func cmdInit(args []string) {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	dbPath := fs.String("db", "users.db", "database file")
	fs.Parse(args) //nolint:errcheck
	saveDB(*dbPath, authserv.NewDB("local", true))
	fmt.Printf("initialized %s\n", *dbPath)
}

func cmdAddUser(args []string) {
	fs := flag.NewFlagSet("adduser", flag.ExitOnError)
	dbPath := fs.String("db", "users.db", "database file")
	selfPath := fs.String("selfpath", "", "the file server's self-certifying pathname")
	user := fs.String("user", "", "user name")
	uid := fs.Uint("uid", 0, "numeric user id")
	password := fs.String("password", "", "optional password for SRP registration")
	kf := fs.String("keyfile", "", "user key (generated if missing)")
	fs.Parse(args) //nolint:errcheck
	if *user == "" {
		die(fmt.Errorf("-user is required"))
	}
	db := loadDB(*dbPath)
	rng := prng.New()
	var key *rabin.PrivateKey
	var err error
	if *kf != "" {
		if _, statErr := os.Stat(*kf); statErr == nil {
			key, err = keyfile.Load(*kf)
		} else {
			key, err = rabin.GenerateKey(rng, 1024)
			if err == nil {
				err = keyfile.Save(*kf, key)
			}
		}
	} else {
		key, err = rabin.GenerateKey(rng, 1024)
	}
	if err != nil {
		die(err)
	}
	srv := authserv.New(*selfPath, rng)
	srv.AddDB(db)
	if err := srv.Register(db, *user, uint32(*uid), []uint32{uint32(*uid)}, authserv.RegisterOptions{
		Password:   *password,
		PrivateKey: key,
	}); err != nil {
		die(err)
	}
	saveDB(*dbPath, db)
	fmt.Printf("registered %s (uid %d)\n", *user, *uid)
}

func cmdList(args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	dbPath := fs.String("db", "users.db", "database file")
	fs.Parse(args) //nolint:errcheck
	db := loadDB(*dbPath)
	for _, name := range db.Names() {
		rec, _ := db.ByName(name)
		srp := " "
		if len(rec.SRPVerifier) > 0 {
			srp = "+srp"
		}
		fmt.Printf("%-20s uid=%-6d %s\n", rec.User, rec.UID, srp)
	}
}

func cmdExport(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	dbPath := fs.String("db", "users.db", "database file")
	out := fs.String("o", "public.db", "output file for the public half")
	fs.Parse(args) //nolint:errcheck
	db := loadDB(*dbPath)
	if err := os.WriteFile(*out, db.ExportPublic(), 0o644); err != nil {
		die(err)
	}
	fmt.Printf("exported public half to %s\n", *out)
}
