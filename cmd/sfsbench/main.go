// Command sfsbench regenerates the tables and figures of the paper's
// evaluation section (§4). Each figure builds the stacks it compares
// — the local substrate, NFS 3 over UDP and TCP, and SFS with its
// ablation knobs — on loopback TCP with the calibrated hardware model
// of internal/netsim, runs the paper's workload, and prints measured
// values next to the paper's where the paper states numbers.
//
// Usage:
//
//	sfsbench [-quick] [-fig 5|6|7|8|9|wb|scal|warm|recovery|latency|login|all] [-json dir]
//	sfsbench -clients N
//	sfsbench -list
//
// -list prints every registered figure key alongside the
// BENCH_<slug>.json file it regenerates, without running anything.
//
// With -json, every figure is also written to dir as a
// machine-readable BENCH_<slug>.json (schema in EXPERIMENTS.md), so
// the performance trajectory can be tracked across changes. With
// -clients, instead of a whole figure, one scalability point (N
// concurrent clients, mixed 8 KB read/write against one server) runs
// and prints its aggregate throughput — the quickest way to reproduce
// a single point of BENCH_scalability.json from the command line.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	fig := flag.String("fig", "all", "which figure to regenerate: a key from -list, or all")
	jsonDir := flag.String("json", "", "directory to write BENCH_*.json files into (empty disables)")
	clients := flag.Int("clients", 0, "run one scalability point with N concurrent clients and exit")
	list := flag.Bool("list", false, "list figure keys and their BENCH_*.json slugs, then exit")
	flag.Parse()

	if *list {
		fmt.Printf("%-10s %-34s %s\n", "KEY", "FIGURE", "JSON")
		for _, spec := range bench.Registry {
			fmt.Printf("%-10s %-34s BENCH_%s.json\n", spec.Key, spec.ID, bench.SlugForID(spec.ID))
		}
		return
	}

	if *clients > 0 {
		per := int64(4 << 20)
		if *quick {
			per = 1 << 20
		}
		p, ss, err := bench.ScalabilityPoint(*clients, per)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sfsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("clients=%d bytes=%d elapsed=%s throughput=%.2f MB/s rpcs=%d rate=%.0f RPC/s\n",
			p.Clients, p.Bytes, p.Elapsed, p.MBps(), p.RPCs, p.RPCps())
		fmt.Printf("server: node_locks=%d node_contended=%d map_contended=%d order_restarts=%d lease_stripe_contended=%d\n",
			ss.VFSLocks.NodeLocks, ss.VFSLocks.NodeContended, ss.VFSLocks.MapContended,
			ss.VFSLocks.OrderRestarts, ss.Leases.StripeContended)
		return
	}

	opts := bench.Options{Quick: *quick, Out: os.Stdout}
	var order []bench.FigureSpec
	if *fig == "all" {
		order = bench.Registry
	} else {
		for _, spec := range bench.Registry {
			if spec.Key == *fig {
				order = []bench.FigureSpec{spec}
				break
			}
		}
		if len(order) == 0 {
			fmt.Fprintf(os.Stderr, "sfsbench: unknown figure %q (see -list)\n", *fig)
			os.Exit(2)
		}
	}
	for _, spec := range order {
		f, err := spec.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sfsbench: figure %s: %v\n", spec.Key, err)
			os.Exit(1)
		}
		if *jsonDir != "" {
			path, err := f.WriteJSON(*jsonDir, *quick)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sfsbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}
