// Command sfskey manages SFS keys, as the paper's sfskey does (§2.4):
// it generates key pairs, prints the self-certifying pathname a key
// yields for a location, and — the headline feature — securely
// downloads a server's self-certifying pathname and the user's own
// encrypted private key given nothing but a password, via SRP.
//
// Subcommands:
//
//	sfskey gen -o key.sfs [-bits 1024]
//	sfskey path -k key.sfs -location HOST
//	sfskey fetch -server ADDR -location HOST -hostid ID -user U -password PW [-o key.sfs]
//
// "sfskey fetch" is the paper's "sfskey add" travel scenario: the user
// types one password and ends up with both the pathname and a usable
// private key, with no administrators or certification authorities
// involved.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"repro/internal/authserv"
	"repro/internal/core"
	"repro/internal/crypto/prng"
	"repro/internal/crypto/rabin"
	"repro/internal/keyfile"
	"repro/internal/secchan"
	"repro/internal/sunrpc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "path":
		cmdPath(os.Args[2:])
	case "fetch":
		cmdFetch(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sfskey gen|path|fetch [flags]")
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "sfskey:", err)
	os.Exit(1)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("o", "key.sfs", "output key file")
	bits := fs.Int("bits", 1024, "modulus size")
	fs.Parse(args) //nolint:errcheck
	rng := prng.New()
	key, err := rabin.GenerateKey(rng, *bits)
	if err != nil {
		die(err)
	}
	if err := keyfile.Save(*out, key); err != nil {
		die(err)
	}
	fmt.Printf("wrote %d-bit key to %s\n", key.N.BitLen(), *out)
}

func cmdPath(args []string) {
	fs := flag.NewFlagSet("path", flag.ExitOnError)
	kf := fs.String("k", "key.sfs", "key file")
	location := fs.String("location", "", "server location (DNS name)")
	fs.Parse(args) //nolint:errcheck
	if *location == "" {
		die(fmt.Errorf("-location is required"))
	}
	key, err := keyfile.Load(*kf)
	if err != nil {
		die(err)
	}
	p := core.MakePath(*location, key.PublicKey.Bytes())
	fmt.Println(p.String())
}

func cmdFetch(args []string) {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	server := fs.String("server", "", "server TCP address (host:port)")
	location := fs.String("location", "", "server location")
	hostid := fs.String("hostid", "", "expected HostID (base 32)")
	user := fs.String("user", "", "user name")
	password := fs.String("password", "", "password (prompted via stdin if empty)")
	out := fs.String("o", "", "write the downloaded private key here")
	fs.Parse(args) //nolint:errcheck
	if *server == "" || *location == "" || *hostid == "" || *user == "" {
		die(fmt.Errorf("-server, -location, -hostid, and -user are required"))
	}
	id, err := core.ParseHostID(*hostid)
	if err != nil {
		die(err)
	}
	pw := *password
	if pw == "" {
		fmt.Fprint(os.Stderr, "password: ")
		if _, err := fmt.Scanln(&pw); err != nil {
			die(err)
		}
	}
	conn, err := net.Dial("tcp", *server)
	if err != nil {
		die(err)
	}
	rng := prng.New()
	tempKey, err := rabin.GenerateKey(rng, 768)
	if err != nil {
		die(err)
	}
	path := core.Path{Location: *location, HostID: id}
	sec, _, _, err := secchan.ClientHandshake(conn, secchan.ServiceAuth, path, tempKey, rng)
	if err != nil {
		die(err)
	}
	cl := sunrpc.NewClient(sec)
	defer cl.Close()
	res, err := authserv.FetchWithPassword(cl, *user, pw, rng)
	if err != nil {
		die(err)
	}
	fmt.Println(res.SelfPath)
	if res.PrivateKey != nil && *out != "" {
		if err := keyfile.Save(*out, res.PrivateKey); err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "private key saved to %s\n", *out)
	}
}
