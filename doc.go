// Package repro is a from-scratch Go reproduction of "Separating key
// management from file system security" (Mazières, Kaminsky, Kaashoek,
// Witchel — SOSP 1999): the SFS secure network file system.
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory), command-line tools under cmd/, and runnable
// examples under examples/. The benchmarks in bench_test.go and the
// cmd/sfsbench tool regenerate every table and figure of the paper's
// evaluation; EXPERIMENTS.md records paper-vs-measured values.
package repro
